"""Micro-benchmarks of the Theorem 5.1 analytical machinery.

These are not paper experiments but performance guards: the heuristics call
these primitives hundreds of times per simulated slot, so regressions here
translate directly into campaign wall-clock time.

Besides the pytest-benchmark cases, this module measures the throughput of
the group-quantity primitives under the scalar (`GroupAnalysis`) and batched
(`BatchGroupAnalysis`) paths and writes the numbers to
``benchmarks/results/BENCH_analysis.json`` so the analysis-layer performance
trajectory is tracked across PRs (and gated by ``check_regression.py``):

* ``group_quantities_cold_8of20`` — 256 distinct 8-worker candidate sets
  drawn from a 20-worker pool (the shape of a proactive heuristic's
  candidate frontiers), computed against empty group caches;
* ``group_quantities_warm_8of20`` — the same sets replayed against warm
  caches (the steady state of a long simulation);
* ``incremental_allocation_m10`` — full greedy ``m = 10`` allocations over
  20 UP workers, the per-slot cost of a proactive heuristic's candidate
  construction.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_analysis.py --output BENCH_analysis.json
"""

from __future__ import annotations

import json
import math
import platform as platform_module
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.batch import BatchGroupAnalysis
from repro.analysis.cache import AnalysisContext
from repro.analysis.criteria import get_criterion
from repro.analysis.group import GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.application import Configuration
from repro.availability.generators import random_markov_models
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling.allocation import IncrementalAllocator

RESULTS_DIR = Path(__file__).parent / "results"

#: Candidate-frontier workload of the throughput report: distinct 8-worker
#: sets over a 20-worker pool (what the proactive heuristics evaluate).
POOL_WORKERS = 20
SET_SIZE = 8
NUM_SETS = 256


def make_platform(num_processors=20, wmin=2, seed=7):
    return paper_platform(
        PlatformSpec(num_processors=num_processors, ncom=10, wmin=wmin),
        num_tasks=10,
        seed=seed,
    )


@pytest.mark.benchmark(group="analysis")
def test_group_quantities_cold(benchmark):
    """Cost of computing Eu/A/P+/E_c for a fresh 8-worker set (no cache)."""
    models = random_markov_models(8, seed=3)
    workers = [WorkerAnalysis(model) for model in models]

    def run():
        analysis = GroupAnalysis(workers, epsilon=1e-6)
        return analysis.quantities(range(8))

    quantities = benchmark(run)
    assert 0.0 < quantities.p_plus < 1.0


@pytest.mark.benchmark(group="analysis")
def test_group_quantities_cached(benchmark):
    """Cost of a cache hit (the common case inside the heuristics)."""
    models = random_markov_models(8, seed=3)
    analysis = GroupAnalysis([WorkerAnalysis(model) for model in models], epsilon=1e-6)
    analysis.quantities(range(8))

    result = benchmark(analysis.quantities, range(8))
    assert result.horizon > 0


@pytest.mark.benchmark(group="analysis")
def test_batch_group_quantities_cold(benchmark):
    """Cost of one batched frontier computation (256 8-worker sets)."""
    workers = [WorkerAnalysis(model) for model in random_markov_models(POOL_WORKERS, seed=3)]
    sets = _frontier_sets()
    GroupAnalysis(workers).quantities(range(POOL_WORKERS))  # warm worker series

    def run():
        return BatchGroupAnalysis(workers, epsilon=1e-6).quantities(sets)

    batch = benchmark(run)
    assert len(batch) == NUM_SETS


@pytest.mark.benchmark(group="analysis")
def test_configuration_evaluation(benchmark):
    """Cost of one full configuration estimate (comm + computation + yield)."""
    platform = make_platform()
    context = AnalysisContext(platform)
    configuration = Configuration({0: 2, 3: 2, 5: 3, 9: 2, 12: 1})

    def run():
        return context.evaluate(configuration, has_program=[0, 3], elapsed=11)

    estimate = benchmark(run)
    assert estimate.expected_time > 0


@pytest.mark.benchmark(group="analysis")
def test_incremental_allocation(benchmark):
    """Cost of one greedy m=10 allocation over 20 UP workers (the per-slot
    cost of a proactive heuristic's candidate construction)."""
    platform = make_platform()
    context = AnalysisContext(platform)
    allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=10)
    up_workers = list(range(platform.num_processors))

    configuration = benchmark(allocator.allocate, up_workers)
    assert configuration is not None
    assert configuration.total_tasks() == 10


# ----------------------------------------------------------------------
# Raw throughput report (BENCH_analysis.json)
# ----------------------------------------------------------------------
def _frontier_sets(num_sets: int = NUM_SETS, seed: int = 7):
    distinct = math.comb(POOL_WORKERS, SET_SIZE)
    if num_sets > distinct:
        raise ValueError(
            f"at most {distinct} distinct {SET_SIZE}-of-{POOL_WORKERS} sets exist, "
            f"requested {num_sets}"
        )
    rng = np.random.default_rng(seed)
    seen = set()
    sets = []
    while len(sets) < num_sets:
        candidate = tuple(sorted(rng.choice(POOL_WORKERS, size=SET_SIZE, replace=False)))
        if candidate not in seen:
            seen.add(candidate)
            sets.append(candidate)
    return sets


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_case(case: str, variant: str, runner, ops: int, repeats: int) -> dict:
    wall = _best_of(runner, repeats)
    return {
        "case": case,
        "variant": variant,
        "ops": ops,
        "wall_seconds": round(wall, 6),
        "ops_per_second": round(ops / wall, 1),
    }


def measure_throughput(num_sets: int = NUM_SETS, repeats: int = 5) -> dict:
    """Measure scalar vs batched analysis throughput; return the JSON report."""
    workers = [WorkerAnalysis(model) for model in random_markov_models(POOL_WORKERS, seed=3)]
    sets = _frontier_sets(num_sets)
    # Warm every per-worker series cache first so both variants measure the
    # group-level assembly (the part the batched path restructures), not the
    # one-off closed-form evaluation of the per-worker series.
    GroupAnalysis(workers, epsilon=1e-6).quantities(range(POOL_WORKERS))

    runs = []

    def cold_scalar():
        analysis = GroupAnalysis(workers, epsilon=1e-6)
        for workers_set in sets:
            analysis.quantities(workers_set)

    def cold_batch():
        BatchGroupAnalysis(workers, epsilon=1e-6).quantities(sets)

    runs.append(
        _measure_case("group_quantities_cold_8of20", "scalar", cold_scalar, num_sets, repeats)
    )
    runs.append(
        _measure_case("group_quantities_cold_8of20", "batch", cold_batch, num_sets, repeats)
    )

    warm_scalar_analysis = GroupAnalysis(workers, epsilon=1e-6)
    for workers_set in sets:
        warm_scalar_analysis.quantities(workers_set)

    def warm_scalar():
        for workers_set in sets:
            warm_scalar_analysis.quantities(workers_set)

    def warm_batch():
        warm_scalar_analysis.quantities_batch(sets)

    runs.append(
        _measure_case("group_quantities_warm_8of20", "scalar", warm_scalar, num_sets, repeats)
    )
    runs.append(
        _measure_case("group_quantities_warm_8of20", "batch", warm_batch, num_sets, repeats)
    )

    platform = make_platform()
    up_workers = list(range(platform.num_processors))
    allocations = 50

    def allocation_runner(batched: bool):
        context = AnalysisContext(platform)
        allocator = IncrementalAllocator(
            get_criterion("E"), context, platform, num_tasks=10, batched=batched
        )

        def run():
            for _ in range(allocations):
                allocator.allocate(up_workers)

        return run

    runs.append(
        _measure_case(
            "incremental_allocation_m10", "scalar", allocation_runner(False),
            allocations, repeats,
        )
    )
    runs.append(
        _measure_case(
            "incremental_allocation_m10", "batch", allocation_runner(True),
            allocations, repeats,
        )
    )

    by_key = {(run["case"], run["variant"]): run["ops_per_second"] for run in runs}
    speedups = {
        case: round(by_key[(case, "batch")] / by_key[(case, "scalar")], 2)
        for case in sorted({run["case"] for run in runs})
    }
    return {
        "benchmark": "analysis_throughput",
        "python": platform_module.python_version(),
        "pool_workers": POOL_WORKERS,
        "set_size": SET_SIZE,
        "num_sets": num_sets,
        "runs": runs,
        "speedup_batch_over_scalar": speedups,
    }


def write_report(report: dict, path: Path = None) -> Path:
    """Write *report* as JSON; defaults to the tracked cross-PR record.

    ``benchmarks/results/BENCH_analysis.json`` holds full-workload best-of-5
    numbers only — reduced sweeps must pass an explicit *path* so they never
    overwrite the performance record.
    """
    if path is None:
        path = RESULTS_DIR / "BENCH_analysis.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


@pytest.mark.benchmark(group="analysis")
def test_throughput_report(benchmark, tmp_path):
    """Reduced-sets throughput sweep (report shape only, written to tmp)."""
    report = benchmark.pedantic(
        measure_throughput, kwargs={"num_sets": 32, "repeats": 1}, rounds=1, iterations=1
    )
    path = write_report(report, tmp_path / "BENCH_analysis.json")
    assert path.exists()
    assert all(run["ops_per_second"] > 0 for run in report["runs"])
    assert set(report["speedup_batch_over_scalar"]) == {
        "group_quantities_cold_8of20",
        "group_quantities_warm_8of20",
        "incremental_allocation_m10",
    }


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Measure analysis-layer throughput")
    parser.add_argument(
        "--output", default=None,
        help="write the JSON report here instead of the tracked baseline file",
    )
    parser.add_argument(
        "--num-sets", type=int, default=NUM_SETS,
        help=f"candidate sets per cold/warm case (default {NUM_SETS})",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="best-of-N repeats per case (default 5)",
    )
    arguments = parser.parse_args()
    measured = measure_throughput(arguments.num_sets, arguments.repeats)
    destination = write_report(
        measured, Path(arguments.output) if arguments.output else None
    )
    print(json.dumps(measured["speedup_batch_over_scalar"], indent=2))
    print(f"report written to {destination}")
