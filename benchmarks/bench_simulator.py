"""Micro-benchmarks of the discrete-event simulation engine.

Measures the per-run cost of representative single instances (passive,
proactive and RANDOM schedulers on a paper-style platform) — the building
blocks whose wall-clock cost determines how much of the paper's 6,000-instance
campaign can be replayed in a given time budget.
"""

from __future__ import annotations

import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling import create_scheduler
from repro.simulation import SimulationEngine


def make_setup(wmin=1, m=5, num_processors=20, ncom=10, seed=11):
    platform = paper_platform(
        PlatformSpec(num_processors=num_processors, ncom=ncom, wmin=wmin),
        num_tasks=m,
        seed=seed,
    )
    application = Application(tasks_per_iteration=m, iterations=10)
    analysis = AnalysisContext(platform)
    return platform, application, analysis


def run_once(platform, application, analysis, heuristic, seed=5, max_slots=60_000):
    engine = SimulationEngine(
        platform,
        application,
        create_scheduler(heuristic),
        seed=seed,
        max_slots=max_slots,
        analysis=analysis,
    )
    return engine.run()


@pytest.mark.benchmark(group="simulator")
@pytest.mark.parametrize("heuristic", ["RANDOM", "IE", "Y-IE", "E-IAY"])
def test_single_instance_m5(benchmark, heuristic):
    """One m = 5 instance (easy cell of the campaign) under each heuristic class."""
    platform, application, analysis = make_setup(wmin=1, m=5)
    result = benchmark.pedantic(
        run_once, args=(platform, application, analysis, heuristic), rounds=3, iterations=1
    )
    assert result.success


@pytest.mark.benchmark(group="simulator")
@pytest.mark.parametrize("heuristic", ["IE", "Y-IE"])
def test_single_instance_m10_moderate(benchmark, heuristic):
    """One m = 10, wmin = 3 instance (moderate difficulty)."""
    platform, application, analysis = make_setup(wmin=3, m=10)
    result = benchmark.pedantic(
        run_once, args=(platform, application, analysis, heuristic), rounds=1, iterations=1
    )
    assert result.completed_iterations > 0
