"""Micro-benchmarks of the discrete-event simulation engine.

Measures the per-run cost of representative single instances (passive,
proactive and RANDOM schedulers on a paper-style platform) — the building
blocks whose wall-clock cost determines how much of the paper's 6,000-instance
campaign can be replayed in a given time budget.

Besides the pytest-benchmark cases, this module measures raw engine
throughput (slots/second on a 20-worker, 100,000-slot capped run) under
the engine's drivers and writes the numbers to
``benchmarks/results/BENCH_simulator.json`` so the performance trajectory is
tracked across PRs:

* ``perslot`` — slot-by-slot sampling but with the passive-scheduler
  contract optimisations (observation skipping, fast-forward);
* ``block``   — the vectorised ``sample_block`` driver;
* ``kernel``  — the compiled scan-primitive driver (numba when available,
  NumPy fallback otherwise — see ``machine.kernel_backend`` in the report);
* ``multiheuristic`` — the one-pass :class:`MultiHeuristicDriver` over a
  full cell of contract heuristics sharing one availability realisation.
  Its ``slots_per_second`` is the *effective aggregate* throughput
  ``len(heuristics) * slots / wall``: the cell simulates that many
  heuristic-slots in one pass, which is the number to compare against a
  ``block`` row's slots/second (a sequential sweep pays the per-slot cost
  once per heuristic).
* ``legacy``  — slot-by-slot ``next_state`` sampling with every per-slot
  short-cut disabled (the seed engine's behaviour).  Only measured with
  ``--include-legacy``: the mode exists for historical comparison and was
  dropped from the CI gate (the ``reference_seed_baseline`` entry keeps the
  true seed-engine numbers on record).
* ``metrics_overhead`` — the kernel driver re-measured with a live
  :class:`~repro.metrics.collector.MetricsCollector` at the default stride;
  the row records collector-on/off slots/second and ``overhead_percent``,
  which ``check_regression.py`` gates in *both* directions (an expensive
  collector is a regression, a suspiciously free one means it stopped
  sampling).
* ``telemetry_overhead`` — same shape for the span tracer
  (:class:`~repro.telemetry.tracer.Tracer` attached to the engine and the
  analysis memo): tracer-on/off slots/second and ``overhead_percent``,
  two-sided gated with the same < 5% budget.

Each report also embeds a ``machine`` fingerprint (CPU model, core count,
numpy/numba versions, active kernel backend) so the regression gate can
tell hardware changes from code regressions.

Run directly for the JSON report::

    PYTHONPATH=src python benchmarks/bench_simulator.py
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.metrics.collector import MetricsCollector
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling import create_scheduler
from repro.simulation import MultiHeuristicDriver, SimulationEngine, kernel_backend

RESULTS_DIR = Path(__file__).parent / "results"

#: The acceptance workload: 20 workers, 100k slots (the run never completes,
#: so every slot is simulated and slots/sec is exactly max_slots / wall).
THROUGHPUT_WORKERS = 20
THROUGHPUT_SLOTS = 100_000

#: The one-pass cell: every registered passive heuristic plus the
#: contract-flagged extensions — what a campaign cell routes through the
#: multi-heuristic driver.
MULTIHEURISTIC_CELL = (
    "RANDOM",
    "FAST",
    "STICKY",
    "THRESHOLD-IE(tau=0.5)",
    "IP",
    "IE",
    "IY",
    "IAY",
)


def machine_fingerprint() -> dict:
    """Hardware/toolchain identity embedded in every report.

    ``check_regression.py`` warns (without failing) when a fresh report's
    fingerprint differs from the committed baseline's: a throughput delta on
    different hardware or a different numba/numpy stack is not evidence of a
    code regression.
    """
    cpu_model = platform_module.processor() or platform_module.machine()
    try:
        with open("/proc/cpuinfo") as handle:  # Linux: the real model string
            for line in handle:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "cpu_model": cpu_model,
        "cpu_count": os.cpu_count(),
        "platform": platform_module.machine(),
        "python": platform_module.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_backend": kernel_backend(),
    }


def make_setup(wmin=1, m=5, num_processors=20, ncom=10, seed=11):
    platform = paper_platform(
        PlatformSpec(num_processors=num_processors, ncom=ncom, wmin=wmin),
        num_tasks=m,
        seed=seed,
    )
    application = Application(tasks_per_iteration=m, iterations=10)
    analysis = AnalysisContext(platform)
    return platform, application, analysis


def run_once(platform, application, analysis, heuristic, seed=5, max_slots=60_000):
    engine = SimulationEngine(
        platform,
        application,
        create_scheduler(heuristic),
        seed=seed,
        max_slots=max_slots,
        analysis=analysis,
    )
    return engine.run()


@pytest.mark.benchmark(group="simulator")
@pytest.mark.parametrize("heuristic", ["RANDOM", "IE", "Y-IE", "E-IAY"])
def test_single_instance_m5(benchmark, heuristic):
    """One m = 5 instance (easy cell of the campaign) under each heuristic class."""
    platform, application, analysis = make_setup(wmin=1, m=5)
    result = benchmark.pedantic(
        run_once, args=(platform, application, analysis, heuristic), rounds=3, iterations=1
    )
    assert result.success


@pytest.mark.benchmark(group="simulator")
@pytest.mark.parametrize("heuristic", ["IE", "Y-IE"])
def test_single_instance_m10_moderate(benchmark, heuristic):
    """One m = 10, wmin = 3 instance (moderate difficulty)."""
    platform, application, analysis = make_setup(wmin=3, m=10)
    result = benchmark.pedantic(
        run_once, args=(platform, application, analysis, heuristic), rounds=1, iterations=1
    )
    assert result.completed_iterations > 0


# ----------------------------------------------------------------------
# Raw throughput report (BENCH_simulator.json)
# ----------------------------------------------------------------------
def _measure_mode(mode: str, heuristic: str, max_slots: int, repeats: int = 3) -> dict:
    """Best-of-*repeats* slots/sec for one driver mode.

    ``legacy`` emulates the seed engine: per-slot sampling and no
    contract-based short-cuts (the scheduler's contract flag is cleared, so
    the engine builds an observation and calls ``select`` on every slot).
    """
    platform = paper_platform(
        PlatformSpec(num_processors=THROUGHPUT_WORKERS, ncom=10, wmin=2),
        num_tasks=5,
        seed=123,
    )
    analysis = AnalysisContext(platform)
    # Enough iterations that the run always hits the slot cap.
    application = Application(tasks_per_iteration=5, iterations=max_slots)
    best = float("inf")
    for _ in range(repeats):
        scheduler = create_scheduler(heuristic)
        if mode == "legacy":
            scheduler.passive_between_rebuilds = False
        engine = SimulationEngine(
            platform,
            application,
            scheduler,
            seed=7,
            max_slots=max_slots,
            analysis=analysis,
            sampler="perslot" if mode in ("legacy", "perslot") else mode,
        )
        start = time.perf_counter()
        engine.run()
        best = min(best, time.perf_counter() - start)
    return {
        "mode": mode,
        "heuristic": heuristic,
        "workers": THROUGHPUT_WORKERS,
        "slots": max_slots,
        "wall_seconds": round(best, 4),
        "slots_per_second": round(max_slots / best, 1),
    }


def _median_triple(triples: list) -> dict:
    """The off/on walls of the A/B/A triple with the median on/off ratio.

    Overhead is a *difference* of two close throughputs, so it is far more
    noise-sensitive than the throughput rows: taking independent best-of
    minima lets multi-second machine drift land asymmetrically (off's best
    from a fast period, on's best from a slow one) and swing the reported
    percentage by ±10pp on a busy host.  Worse, any *monotone* slowdown
    (thermal throttling, a noisy co-tenant ramping up) biases every
    off-then-on pair positively.  Each measurement is therefore an A/B/A
    triple — off, on, off, with the off wall the mean of the two off runs —
    so linear drift cancels within the triple; the median triple is robust
    to the outliers that remain.
    """
    ordered = sorted(triples, key=lambda walls: walls[True] / walls[False])
    return ordered[(len(ordered) - 1) // 2]


def _measure_metrics_overhead(heuristic: str, max_slots: int, repeats: int = 3) -> dict:
    """The ``metrics_overhead`` report row: collector on vs off on ``kernel``.

    Off/on runs are interleaved as A/B/A triples and reduced by
    :func:`_median_triple`.  The row carries ``overhead_percent`` instead
    of ``slots_per_second`` — the gate in ``check_regression.py`` treats
    these rows specially (two-sided: a collector that suddenly got
    expensive *or* suspiciously free both fail).
    """
    platform = paper_platform(
        PlatformSpec(num_processors=THROUGHPUT_WORKERS, ncom=10, wmin=2),
        num_tasks=5,
        seed=123,
    )
    analysis = AnalysisContext(platform)
    application = Application(tasks_per_iteration=5, iterations=max_slots)

    def run_once(collect: bool) -> float:
        engine = SimulationEngine(
            platform,
            application,
            create_scheduler(heuristic),
            seed=7,
            max_slots=max_slots,
            analysis=analysis,
            sampler="kernel",
            metrics=MetricsCollector() if collect else None,
        )
        start = time.perf_counter()
        engine.run()
        return time.perf_counter() - start

    run_once(False)  # untimed warmup
    triples = []
    for _ in range(repeats):
        off_before = run_once(False)
        on = run_once(True)
        off_after = run_once(False)
        triples.append({False: (off_before + off_after) / 2.0, True: on})
    walls = _median_triple(triples)
    off_sps = max_slots / walls[False]
    on_sps = max_slots / walls[True]
    return {
        "mode": "metrics_overhead",
        "heuristic": heuristic,
        "workers": THROUGHPUT_WORKERS,
        "slots": max_slots,
        "collector_off_slots_per_second": round(off_sps, 1),
        "collector_on_slots_per_second": round(on_sps, 1),
        "overhead_percent": round(100.0 * (off_sps / on_sps - 1.0), 2),
    }


def _measure_telemetry_overhead(heuristic: str, max_slots: int, repeats: int = 3) -> dict:
    """The ``telemetry_overhead`` report row: span tracer on vs off on ``kernel``.

    Mirrors :func:`_measure_metrics_overhead` — A/B/A triples reduced by
    :func:`_median_triple`, ``overhead_percent`` instead of
    ``slots_per_second``, gated two-sided by ``check_regression.py``.  The
    traced runs write real spans (engine phases plus the allocator's memo
    counters) to a throwaway directory so the measured cost includes JSON
    serialisation and buffered writes, not just the timing calls.
    """
    import tempfile

    from repro.telemetry.tracer import Tracer

    platform = paper_platform(
        PlatformSpec(num_processors=THROUGHPUT_WORKERS, ncom=10, wmin=2),
        num_tasks=5,
        seed=123,
    )
    analysis = AnalysisContext(platform)
    application = Application(tasks_per_iteration=5, iterations=max_slots)
    with tempfile.TemporaryDirectory() as scratch:
        tracer = Tracer(scratch)

        def run_once(trace: bool) -> float:
            analysis.tracer = tracer if trace else None
            engine = SimulationEngine(
                platform,
                application,
                create_scheduler(heuristic),
                seed=7,
                max_slots=max_slots,
                analysis=analysis,
                sampler="kernel",
                tracer=tracer if trace else None,
            )
            start = time.perf_counter()
            engine.run()
            return time.perf_counter() - start

        # One untimed warmup so compilation/cache effects never land
        # asymmetrically in the first timed (tracer-off) run.
        run_once(False)
        triples = []
        for _ in range(repeats):
            off_before = run_once(False)
            on = run_once(True)
            off_after = run_once(False)
            triples.append({False: (off_before + off_after) / 2.0, True: on})
        analysis.tracer = None
        tracer.close()
    walls = _median_triple(triples)
    off_sps = max_slots / walls[False]
    on_sps = max_slots / walls[True]
    return {
        "mode": "telemetry_overhead",
        "heuristic": heuristic,
        "workers": THROUGHPUT_WORKERS,
        "slots": max_slots,
        "tracer_off_slots_per_second": round(off_sps, 1),
        "tracer_on_slots_per_second": round(on_sps, 1),
        "overhead_percent": round(100.0 * (off_sps / on_sps - 1.0), 2),
    }


def _measure_multiheuristic(max_slots: int, repeats: int = 3) -> dict:
    """Best-of-*repeats* one-pass run of the full contract cell."""
    platform = paper_platform(
        PlatformSpec(num_processors=THROUGHPUT_WORKERS, ncom=10, wmin=2),
        num_tasks=5,
        seed=123,
    )
    analysis = AnalysisContext(platform)
    application = Application(tasks_per_iteration=5, iterations=max_slots)
    best = float("inf")
    for _ in range(repeats):
        driver = MultiHeuristicDriver(
            platform,
            application,
            [create_scheduler(name) for name in MULTIHEURISTIC_CELL],
            seed=7,
            max_slots=max_slots,
            analysis=analysis,
            sampler="kernel",
        )
        start = time.perf_counter()
        driver.run()
        best = min(best, time.perf_counter() - start)
    effective = len(MULTIHEURISTIC_CELL) * max_slots / best
    return {
        "mode": "multiheuristic",
        "heuristic": "cell",
        "heuristics": list(MULTIHEURISTIC_CELL),
        "workers": THROUGHPUT_WORKERS,
        "slots": max_slots,
        "wall_seconds": round(best, 4),
        # Effective aggregate: the one pass simulates |cell| heuristic-slots
        # per availability slot; comparable to a block row's slots/second,
        # which a sequential sweep would pay once per heuristic.
        "slots_per_second": round(effective, 1),
        "throughput_formula": "len(heuristics) * slots / wall_seconds",
    }


def measure_throughput(
    max_slots: int = THROUGHPUT_SLOTS, repeats: int = 3, include_legacy: bool = False
) -> dict:
    """Measure all modes and return the JSON-ready report."""
    modes = (("legacy",) if include_legacy else ()) + ("perslot", "block", "kernel")
    runs = []
    for heuristic in ("RANDOM", "IE"):
        for mode in modes:
            runs.append(_measure_mode(mode, heuristic, max_slots, repeats))
    runs.append(_measure_multiheuristic(max_slots, repeats))
    by_key = {(r["heuristic"], r["mode"]): r["slots_per_second"] for r in runs}
    # Overhead rows are a *difference* of two close throughputs, so they are
    # far more noise-sensitive than the throughput rows; give the median
    # A/B/A estimator (see _median_triple) two extra triples to converge.
    overhead_repeats = repeats + 2
    overhead_rows = [
        _measure_metrics_overhead(heuristic, max_slots, overhead_repeats)
        for heuristic in ("RANDOM", "IE")
    ]
    runs.extend(overhead_rows)
    telemetry_rows = [
        _measure_telemetry_overhead(heuristic, max_slots, overhead_repeats)
        for heuristic in ("RANDOM", "IE")
    ]
    runs.extend(telemetry_rows)
    report = {
        "benchmark": "simulator_throughput",
        "machine": machine_fingerprint(),
        "runs": runs,
        "speedup_kernel_over_block": {
            heuristic: round(by_key[(heuristic, "kernel")] / by_key[(heuristic, "block")], 2)
            for heuristic in ("RANDOM", "IE")
        },
        # Aggregate heuristic-slots/second of the one-pass cell vs the cost
        # of one block-driven heuristic (what each member of a sequential
        # sweep would pay): how much cheaper a campaign cell gets.
        "speedup_multiheuristic_over_block": {
            heuristic: round(by_key[("cell", "multiheuristic")] / by_key[(heuristic, "block")], 2)
            for heuristic in ("RANDOM", "IE")
        },
        # Collector cost on the kernel driver (the campaign default); the
        # acceptance budget is < 5% on this workload.
        "metrics_overhead_percent": {
            row["heuristic"]: row["overhead_percent"] for row in overhead_rows
        },
        # Span tracer cost on the kernel driver; same < 5% acceptance budget
        # (tracing off must be the exact pre-telemetry code path, so the off
        # side doubles as a guard against accidental always-on instrumentation).
        "telemetry_overhead_percent": {
            row["heuristic"]: row["overhead_percent"] for row in telemetry_rows
        },
        # The in-tree "legacy" mode still benefits from structural engine
        # improvements (per-block DOWN/column-change masks, cheaper state
        # bookkeeping), so it *understates* the gain over the original
        # engine.  For the record, the seed engine (commit 2fe44f3, true
        # slot-by-slot sampler) measured on the same workload/machine:
        "reference_seed_baseline": {
            "commit": "2fe44f3",
            "slots_per_second": {"RANDOM": 8817, "IE": 8248},
        },
    }
    if include_legacy:
        report["speedup_block_over_legacy"] = {
            heuristic: round(by_key[(heuristic, "block")] / by_key[(heuristic, "legacy")], 2)
            for heuristic in ("RANDOM", "IE")
        }
    return report


def write_report(report: dict, path: Path = None) -> Path:
    """Write *report* as JSON; defaults to the tracked cross-PR record.

    ``benchmarks/results/BENCH_simulator.json`` holds full-workload
    (100k-slot, best-of-3) numbers only — reduced sweeps must pass an
    explicit *path* so they never overwrite the performance record.
    """
    if path is None:
        path = RESULTS_DIR / "BENCH_simulator.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


@pytest.mark.benchmark(group="simulator")
def test_throughput_report(benchmark, tmp_path):
    """Reduced-slots throughput sweep (report shape only, written to tmp)."""
    report = benchmark.pedantic(
        measure_throughput, kwargs={"max_slots": 20_000, "repeats": 1},
        rounds=1, iterations=1,
    )
    path = write_report(report, tmp_path / "BENCH_simulator.json")
    assert path.exists()
    for run in report["runs"]:
        if run["mode"].endswith("_overhead"):
            assert "overhead_percent" in run
        else:
            assert run["slots_per_second"] > 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="Measure simulator throughput")
    parser.add_argument(
        "--output", default=None,
        help="write the JSON report here instead of the tracked baseline file",
    )
    parser.add_argument(
        "--slots", type=int, default=THROUGHPUT_SLOTS,
        help=f"slots per measured run (default {THROUGHPUT_SLOTS})",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N repeats (default 3)")
    parser.add_argument(
        "--include-legacy", action="store_true",
        help="also measure the seed-style legacy mode (off by default, not CI-gated)",
    )
    cli_args = parser.parse_args()
    if cli_args.output is None and cli_args.slots != THROUGHPUT_SLOTS:
        parser.error("reduced sweeps must pass --output so the tracked baseline is not overwritten")
    full_report = measure_throughput(
        cli_args.slots, cli_args.repeats, include_legacy=cli_args.include_legacy
    )
    output = write_report(full_report, Path(cli_args.output) if cli_args.output else None)
    print(json.dumps(full_report, indent=2))
    print(f"\nwritten to {output}")
