"""Benchmark regenerating **Table II** of the paper (m = 10, best 8 heuristics).

Table II reports the same metrics as Table I but for the harder m = 10
instances, restricted to the eight heuristics with %diff below 50 % in the
paper: Y-IE, P-IE, E-IAY, E-IY, E-IP, IAY, IY and the IE reference.  Expected
qualitative shape: the proactive heuristics built on IE host selection
(Y-IE, P-IE) remain ahead of the reference, and the purely passive yield
heuristics (IAY, IY) fall far behind.
"""

from __future__ import annotations

import pytest

from _config import BENCH_SCALE_M10, campaign_scale, write_result
from repro.experiments.metrics import summarize_results
from repro.experiments.report import compare_with_paper, format_comparison
from repro.experiments.runner import run_campaign
from repro.experiments.tables import PAPER_TABLE2, format_summaries
from repro.scheduling.registry import TABLE2_HEURISTICS


@pytest.mark.benchmark(group="table2")
def test_table2_campaign(benchmark):
    """Run the Table II campaign and regenerate the table."""
    scale = campaign_scale(BENCH_SCALE_M10)

    def run():
        campaign = run_campaign(
            10, heuristics=TABLE2_HEURISTICS, scale=scale, label="table2"
        )
        return summarize_results(campaign.results)

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)

    text = format_summaries(
        summaries,
        title=f"Table II reproduction (m = 10, {scale.num_instances()} instances per heuristic)",
    )
    paper_rows = "\n".join(
        f"  {name:8s} fails={row[0]:>3d}  %diff={row[1]:>8.2f}  %wins={row[2]:>6.2f}  "
        f"%wins30={row[3]:>6.2f}  stdv={row[4]:>5.2f}"
        for name, row in PAPER_TABLE2.items()
    )
    comparison = format_comparison(compare_with_paper(summaries, PAPER_TABLE2))
    report = (
        f"{text}\n\nPaper-reported Table II (for comparison):\n{paper_rows}"
        f"\n\nShape comparison with the paper:\n{comparison}"
    )
    print("\n" + report)
    write_result("table2.txt", report)

    by_name = {summary.heuristic: summary for summary in summaries}
    assert set(by_name) == set(TABLE2_HEURISTICS)
    assert by_name["IE"].pct_diff == pytest.approx(0.0)
