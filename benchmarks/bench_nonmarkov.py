"""Ablation B (paper §VII-B future work): Markov heuristics on non-Markov availability.

The paper's conclusion proposes to "build a flawed Markov model based on
real-world processor availability traces, and investigate how 'wrong' the
Markov heuristics behave" when the true availability process is not
Markovian.  This benchmark implements that robustness experiment with the
semi-Markov (Weibull / log-normal holding time) substrate:

* processors follow :class:`SemiMarkovAvailabilityModel` (heavy-tailed UP
  intervals), but
* the heuristics only see the fitted geometric-sojourn Markov approximation
  (``markov_approximation()``), exactly the "flawed model" of the paper.

The question answered: does the ranking IE < Y-IE (and the huge RANDOM gap)
survive the model mismatch?
"""

from __future__ import annotations

import pytest

from _config import write_result
from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.availability import SemiMarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling import create_scheduler
from repro.simulation import SimulationEngine
from repro.utils.rng import as_generator
from repro.utils.tables import format_table

HEURISTICS = ("RANDOM", "IE", "IAY", "Y-IE", "P-IE")
NUM_INSTANCES = 3


def build_platform(seed: int) -> Platform:
    """A 12-processor platform with heavy-tailed (non-Markov) availability."""
    rng = as_generator(seed)
    processors = []
    for _ in range(12):
        model = SemiMarkovAvailabilityModel.desktop_grid(
            up_shape=float(rng.uniform(0.5, 0.8)),
            mean_up=float(rng.uniform(25.0, 60.0)),
            mean_reclaimed=float(rng.uniform(2.0, 6.0)),
            mean_down=float(rng.uniform(10.0, 30.0)),
            reclaim_fraction=float(rng.uniform(0.6, 0.85)),
        )
        processors.append(
            Processor(speed=int(rng.integers(1, 8)), capacity=5, availability=model)
        )
    return Platform(processors, ncom=4, tprog=5, tdata=1)


def run_campaign():
    rows = []
    totals = {name: 0.0 for name in HEURISTICS}
    fails = {name: 0 for name in HEURISTICS}
    for instance in range(NUM_INSTANCES):
        platform = build_platform(seed=100 + instance)
        application = Application(tasks_per_iteration=5, iterations=10)
        analysis = AnalysisContext(platform)  # fitted ("flawed") Markov view
        for name in HEURISTICS:
            engine = SimulationEngine(
                platform,
                application,
                create_scheduler(name),
                seed=200 + instance,
                max_slots=40_000,
                analysis=analysis,
            )
            result = engine.run()
            if result.success:
                totals[name] += result.makespan
            else:
                fails[name] += 1
                totals[name] += result.effective_makespan()
            rows.append([instance, name, result.makespan, result.success])
    return rows, totals, fails


@pytest.mark.benchmark(group="nonmarkov")
def test_markov_heuristics_on_semi_markov_availability(benchmark):
    rows, totals, fails = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    summary_rows = [
        [name, fails[name], round(totals[name] / NUM_INSTANCES, 1)] for name in HEURISTICS
    ]
    text = (
        "Non-Markov robustness (Weibull/log-normal availability, heuristics use "
        "the fitted Markov model):\n"
        + format_table(summary_rows, headers=["Heuristic", "#fails", "mean makespan"])
        + "\n\nPer-instance results:\n"
        + format_table(rows, headers=["instance", "heuristic", "makespan", "success"])
    )
    print("\n" + text)
    write_result("nonmarkov_robustness.txt", text)

    # The informed heuristics should remain ahead of RANDOM despite the model
    # mismatch (the paper's conjecture for this future-work experiment).
    informed_best = min(totals[name] for name in HEURISTICS if name != "RANDOM")
    assert informed_best <= totals["RANDOM"]
