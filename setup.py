"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on minimal offline environments where the
``wheel`` package (required by PEP 660 editable builds) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
