#!/usr/bin/env python
"""Robustness of the Markov-based heuristics to non-Markovian availability.

The paper's conclusion (Section VII-B) acknowledges that real desktop-grid
availability is *not* memoryless — measured availability intervals look
Weibull or log-normal — and proposes, as future work, to check how badly the
Markov-driven heuristics behave when their model is wrong.

This example implements that experiment:

* processors follow a semi-Markov process with heavy-tailed (Weibull) UP
  intervals and log-normal reclamation/repair durations;
* the schedulers are *not* told the truth — they only see the fitted
  geometric-sojourn Markov approximation (the "flawed Markov model built from
  traces" of the paper);
* the usual contenders (RANDOM, IE, IAY, Y-IE, P-IE) race on the same
  availability realisations.

Run with:  python examples/nonmarkov_robustness.py
"""

from __future__ import annotations

from repro import Application, SemiMarkovAvailabilityModel
from repro.analysis import AnalysisContext
from repro.platform import Platform, Processor
from repro.scheduling import create_scheduler
from repro.simulation import simulate
from repro.utils.rng import as_generator
from repro.utils.tables import format_table

HEURISTICS = ("RANDOM", "IE", "IAY", "Y-IE", "P-IE")
NUM_INSTANCES = 3


def build_platform(seed: int) -> Platform:
    rng = as_generator(seed)
    processors = []
    for index in range(12):
        model = SemiMarkovAvailabilityModel.desktop_grid(
            up_shape=float(rng.uniform(0.5, 0.8)),       # heavy-tailed UP intervals
            mean_up=float(rng.uniform(25.0, 60.0)),
            mean_reclaimed=float(rng.uniform(2.0, 6.0)),
            mean_down=float(rng.uniform(10.0, 30.0)),
            reclaim_fraction=float(rng.uniform(0.6, 0.85)),
        )
        processors.append(
            Processor(speed=int(rng.integers(1, 8)), capacity=5, availability=model)
        )
    return Platform(processors, ncom=4, tprog=5, tdata=1)


def main() -> None:
    print("Markov-designed heuristics on heavy-tailed (non-Markov) availability")
    print("---------------------------------------------------------------------")
    rows = []
    totals = {name: 0.0 for name in HEURISTICS}
    fails = {name: 0 for name in HEURISTICS}
    for instance in range(NUM_INSTANCES):
        platform = build_platform(seed=400 + instance)
        application = Application(tasks_per_iteration=5, iterations=10)
        # The heuristics only see the *fitted* Markov approximation of each
        # processor (AnalysisContext calls markov_approximation() internally).
        analysis = AnalysisContext(platform)
        for name in HEURISTICS:
            result = simulate(
                platform, application, create_scheduler(name),
                seed=500 + instance, max_slots=40_000, analysis=analysis,
            )
            makespan = result.makespan if result.success else result.effective_makespan()
            totals[name] += makespan
            fails[name] += 0 if result.success else 1
            rows.append([instance, name, result.makespan if result.success else "cap",
                         result.total_restarts])

    print(format_table(rows, headers=["instance", "heuristic", "makespan", "restarts"]))
    print()
    summary = [[name, fails[name], round(totals[name] / NUM_INSTANCES, 1)] for name in HEURISTICS]
    print(format_table(summary, headers=["heuristic", "#fails", "mean makespan (cap for fails)"]))
    print(
        "\nEven with the wrong (memoryless) availability model, the informed\n"
        "heuristics keep a large margin over RANDOM, and the proactive Y-IE / P-IE\n"
        "variants remain competitive with the IE reference — the qualitative\n"
        "conclusions of the paper survive the model mismatch on these instances."
    )


if __name__ == "__main__":
    main()
