#!/usr/bin/env python
"""Run a miniature version of the paper's experimental campaign (Section VII).

The paper evaluates its seventeen heuristics on a grid of synthetic scenarios
``(m, ncom, wmin)`` and reports, for each heuristic, the relative difference
to the IE reference (%diff), the fraction of trials won (%wins / %wins30) and
the number of failed instances.  This example runs a small slice of that
campaign (one value of m, a couple of grid cells, a handful of trials) and
prints the same table — a laptop-sized preview of Table I.

Run with:  python examples/heuristic_comparison.py          (about a minute)
      or:  python examples/heuristic_comparison.py --full    (all 17 heuristics)
"""

from __future__ import annotations

import argparse
import time

from repro import CampaignScale, run_campaign, summarize_results
from repro.experiments.tables import format_summaries
from repro.scheduling import ALL_HEURISTICS

#: A representative subset: the baseline, the reference, the best passive and
#: the two headline proactive heuristics.
DEFAULT_HEURISTICS = ("RANDOM", "IE", "IAY", "Y-IE", "P-IE", "E-IAY")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="evaluate all seventeen heuristics (slower)")
    parser.add_argument("--m", type=int, default=5, help="tasks per iteration (default 5)")
    parser.add_argument("--trials", type=int, default=2, help="trials per scenario")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args()

    heuristics = ALL_HEURISTICS if args.full else DEFAULT_HEURISTICS
    scale = CampaignScale(
        ncom_values=(5, 20),
        wmin_values=(1, 3),
        scenarios_per_cell=2,
        trials_per_scenario=args.trials,
        iterations=10,
        makespan_cap=60_000,
    )

    print(f"Campaign: m = {args.m}, {scale.num_instances()} problem instances, "
          f"{len(heuristics)} heuristics")
    start = time.perf_counter()
    campaign = run_campaign(
        args.m,
        heuristics=heuristics,
        scale=scale,
        label="example-comparison",
        n_jobs=args.jobs,
        progress=lambda done, total: print(f"  scenario {done}/{total} done", flush=True),
    )
    elapsed = time.perf_counter() - start

    summaries = summarize_results(campaign.results)
    print()
    print(format_summaries(
        summaries,
        title=f"Mini Table I (m = {args.m}) — {elapsed:.1f}s of simulation",
    ))
    print(
        "\nReading the table: negative %diff means the heuristic beats the IE\n"
        "reference on average; the paper's full campaign (Table I) finds Y-IE,\n"
        "P-IE and E-IAY ahead of IE and RANDOM more than 20x slower."
    )


if __name__ == "__main__":
    main()
