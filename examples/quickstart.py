#!/usr/bin/env python
"""Quickstart: simulate a tightly-coupled application on a volatile desktop grid.

This example builds a random 12-processor platform following the paper's
experimental methodology (Section VII-A), defines an iterative application
with m = 5 tightly-coupled tasks per iteration, and compares three schedulers:

* ``RANDOM``  — the uninformed baseline,
* ``IE``      — the passive "expected completion time" heuristic (the paper's
  reference),
* ``Y-IE``    — the best proactive heuristic of the paper (host selection by
  expected completion time, configuration switching by expected yield).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnalysisContext,
    Application,
    PlatformSpec,
    create_scheduler,
    paper_platform,
    simulate,
)


def main() -> None:
    # 1. A random heterogeneous platform: 12 processors, speeds in [1, 10],
    #    Markov availability with stay-probabilities in [0.90, 0.99],
    #    master limited to 6 simultaneous transfers.
    spec = PlatformSpec(num_processors=12, ncom=6, wmin=1)
    platform = paper_platform(spec, num_tasks=5, seed=2024)
    print("Platform:", platform.describe())
    for processor in platform:
        print("  ", processor.describe())

    # 2. The application: 10 iterations of 5 tightly-coupled tasks.
    application = Application(tasks_per_iteration=5, iterations=10, name="quickstart")
    print("\nApplication:", application.describe())

    # 3. Sharing one AnalysisContext across schedulers avoids recomputing the
    #    Markov machinery of Section V (it only depends on the platform).
    analysis = AnalysisContext(platform)

    print("\nSimulating 10 iterations under three schedulers (same availability):")
    print(f"{'heuristic':>10s} {'makespan':>9s} {'restarts':>9s} {'reconfigs':>10s} {'mean iter':>10s}")
    for name in ("RANDOM", "IE", "Y-IE"):
        result = simulate(
            platform,
            application,
            create_scheduler(name),
            seed=7,            # same seed => same availability realisation
            max_slots=200_000,
            analysis=analysis,
        )
        mean_iteration = result.mean_iteration_duration()
        print(
            f"{name:>10s} {result.makespan!s:>9s} {result.total_restarts:>9d} "
            f"{result.total_configuration_changes:>10d} "
            f"{mean_iteration:>10.1f}"
        )

    print(
        "\nThe informed heuristics finish far earlier than RANDOM, and the proactive\n"
        "Y-IE heuristic improves further on IE by abandoning configurations whose\n"
        "expected yield has been overtaken by the currently available workers."
    )


if __name__ == "__main__":
    main()
