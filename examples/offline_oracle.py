#!/usr/bin/env python
"""Off-line complexity artefacts (Section IV) and a clairvoyant baseline.

Two things are demonstrated:

1. **Theorem 4.1 in action** — a random bipartite ENCD instance is reduced to
   both off-line variants (µ = 1 and µ = ∞) and all three problems are solved
   exactly; their feasibility answers always agree, and the off-line solution
   maps back to a bi-clique of the original graph.

2. **How much clairvoyance is worth** — on one fixed availability trace, the
   greedy clairvoyant oracle (which knows the whole future) is compared with
   the on-line heuristics IE and Y-IE (which do not), bracketing them with the
   combinatorial upper bound.

Run with:  python examples/offline_oracle.py
"""

from __future__ import annotations

from repro import Application, AvailabilityTrace, create_scheduler, simulate
from repro.availability.generators import random_markov_models
from repro.offline import (
    ENCDInstance,
    OfflineProblem,
    encd_to_offline_mu1,
    encd_to_offline_mu_inf,
    greedy_oracle_iterations,
    solve_encd_bruteforce,
    solve_offline_mu1,
    solve_offline_mu_inf,
    upper_bound_iterations,
)
from repro.offline.encd import biclique_from_offline_solution
from repro.platform import Platform, Processor
from repro.utils.tables import format_table


def theorem_41_demo() -> None:
    print("Theorem 4.1 — ENCD reduction to the off-line scheduling problems")
    print("-----------------------------------------------------------------")
    instance = ENCDInstance.random(8, 10, edge_probability=0.55, a=3, b=3, seed=11)
    biclique = solve_encd_bruteforce(instance)
    mu1 = solve_offline_mu1(encd_to_offline_mu1(instance))
    mu_inf = solve_offline_mu_inf(encd_to_offline_mu_inf(instance))
    rows = [
        ["ENCD (3x3 bi-clique?)", "feasible" if biclique else "infeasible"],
        ["OFF-LINE-COUPLED (mu = 1)", "feasible" if mu1 else "infeasible"],
        ["OFF-LINE-COUPLED (mu = inf)", "feasible" if mu_inf else "infeasible"],
    ]
    print(format_table(rows, headers=["problem", "answer"], align_right=[False, False]))
    if mu1 is not None:
        left, right = biclique_from_offline_solution(instance, mu1.workers, mu1.slots)
        print(f"The mu = 1 schedule uses workers {sorted(mu1.workers)} during slots "
              f"{list(mu1.slots)}, i.e. the bi-clique V'={sorted(left)}, W'={sorted(right)}.")
    print()


def oracle_vs_online_demo() -> None:
    print("Clairvoyant oracle vs on-line heuristics on one recorded trace")
    print("---------------------------------------------------------------")
    # A 10-processor platform whose availability is *recorded* into a trace so
    # the oracle and the on-line heuristics see exactly the same future.
    models = random_markov_models(10, seed=21)
    horizon = 4_000
    trace = AvailabilityTrace.from_models(models, horizon=horizon, seed=22)

    from repro.availability import TraceAvailabilityModel

    processors = [
        Processor(speed=2, capacity=1, availability=TraceAvailabilityModel(trace.to_strings()[q]))
        for q in range(trace.num_processors)
    ]
    # No communication cost: this matches the off-line model of Section IV.
    platform = Platform(processors, ncom=10, tprog=0, tdata=0)
    application = Application(tasks_per_iteration=4, iterations=10)

    problem = OfflineProblem(trace=trace, num_tasks=4, task_slots=2, capacity=1)
    oracle_count, schedule = greedy_oracle_iterations(problem)
    oracle_makespan = schedule[9][1] + 1 if oracle_count >= 10 else None
    bound = upper_bound_iterations(problem)

    rows = [["clairvoyant upper bound", f">= {bound} iterations in {horizon} slots", ""],
            ["greedy clairvoyant oracle", f"{oracle_count} iterations",
             f"10th iteration done at slot {oracle_makespan}" if oracle_makespan else ""]]
    for name in ("IE", "Y-IE"):
        result = simulate(platform, application, create_scheduler(name), seed=5,
                          max_slots=horizon, trace=trace)
        rows.append([
            f"on-line {name}",
            f"{result.completed_iterations} iterations",
            f"makespan {result.makespan}" if result.success else "did not finish 10 iterations",
        ])
    print(format_table(rows, headers=["scheduler", "iterations", "detail"],
                       align_right=[False, False, False]))
    print("\nThe greedy oracle knows the future availability, so it enrols workers whose")
    print("current UP runs last long enough and never wastes work on a configuration")
    print("that is about to crash.  It is a feasible clairvoyant schedule (a lower bound")
    print("on the clairvoyant optimum, which is NP-hard to compute — Theorem 4.1); the")
    print("combinatorial upper bound brackets what any scheduler could possibly achieve.")


def main() -> None:
    theorem_41_demo()
    oracle_vs_online_demo()


if __name__ == "__main__":
    main()
