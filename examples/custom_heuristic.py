#!/usr/bin/env python
"""Add your own heuristic in ~20 lines and race it against the paper's.

The component registry makes the scheduler catalogue pluggable: decorate a
:class:`~repro.scheduling.base.Scheduler` subclass with
``@register_heuristic`` and every construction path — ``create_scheduler``,
``repro.api``, campaign specs, the CLI's ``repro heuristics`` listing —
accepts it, including parameterized expressions validated against your
``__init__`` signature.

The example policy, ``MEDIAN``, enrols the workers whose speeds sit closest
to the platform's median speed (the idea: extreme machines are either slow
or, on desktop grids, often fast *because* they are idle-and-about-to-be-
reclaimed).  It is deliberately simple — the point is the plumbing.

Run with:  python examples/custom_heuristic.py
"""

from __future__ import annotations

from repro import api, register_heuristic
from repro.application.configuration import Configuration
from repro.scheduling import Observation, Scheduler


# ----------------------------------------------------------------------
# The ~20 lines: define + register
# ----------------------------------------------------------------------
@register_heuristic(
    "MEDIAN",
    family="extension",
    description="enrol workers closest to the median platform speed",
)
class MedianSpeedScheduler(Scheduler):
    passive_between_rebuilds = True

    def __init__(self, spread: int = 0) -> None:
        super().__init__()
        self.spread = int(spread)

    def select(self, observation: Observation) -> Configuration:
        self._require_bound()
        if not observation.needs_new_configuration():
            return observation.current_configuration
        speeds = sorted(p.speed for p in self.platform.processors)
        median = speeds[len(speeds) // 2] + self.spread
        ordered = sorted(
            observation.up_workers(),
            key=lambda w: (abs(self.platform.processor(w).speed - median), w),
        )
        m = self.application.tasks_per_iteration
        if len(ordered) < m:
            return Configuration.empty()
        return Configuration({worker: 1 for worker in ordered[:m]})


# ----------------------------------------------------------------------
# Everything downstream now accepts it, parameters included
# ----------------------------------------------------------------------
def main() -> None:
    result = api.run("MEDIAN(spread=1)", m=5, ncom=6, wmin=2, seed=7)
    print(f"single run: {result.heuristic} -> makespan {result.makespan}")

    comparison = api.compare(
        ["IE", "Y-IE", "MEDIAN", "MEDIAN(spread=2)"],
        m=5, ncom=6, wmin=2, scenarios=2, trials=2,
    )
    print()
    print(comparison.table())


if __name__ == "__main__":
    main()
