#!/usr/bin/env python
"""Walk through the paper's Figure 1 worked example, with an ASCII Gantt chart.

Figure 1 of the paper illustrates a single iteration with m = 5 tasks on a
5-processor platform (w_i = i), ncom = 2, Tprog = 2, Tdata = 1: two tasks on
P2, two on P3, one on P4.  The bandwidth constraint keeps P4 idle at first,
a reclamation suspends P3 during the communication phase, and two more
reclamations suspend the synchronised computation phase.

This script replays the same scenario on a scripted availability trace and
renders the execution in the same visual language as the figure
(P = program transfer, D = data transfer, C = computation, I = idle,
· = reclaimed, # = down).

Run with:  python examples/figure1_walkthrough.py
"""

from __future__ import annotations

from repro import Application, AvailabilityTrace, Configuration, MarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling.base import Observation, Scheduler
from repro.simulation import SimulationEngine, render_gantt


class Figure1Scheduler(Scheduler):
    """Always requests the allocation of the worked example (P2:2, P3:2, P4:1)."""

    name = "FIGURE1"

    def select(self, observation: Observation) -> Configuration:
        target = Configuration({1: 2, 2: 2, 3: 1})
        if all(observation.is_up(worker) for worker in target.workers):
            return target
        if not observation.failure and not observation.current_configuration.is_empty():
            return observation.current_configuration
        return Configuration.empty()


def main() -> None:
    processors = [
        Processor(speed=i, capacity=5, availability=MarkovAvailabilityModel.always_up(),
                  name=f"P{i}")
        for i in range(1, 6)
    ]
    platform = Platform(processors, ncom=2, tprog=2, tdata=1)
    application = Application(tasks_per_iteration=5, iterations=1, name="figure-1")

    # Scripted availability: P3 is reclaimed during the communication phase,
    # then P2 and P3 are reclaimed (in turn) during the computation phase.
    trace = AvailabilityTrace([
        "uuuuuuuuuuuuuuuuuuuu",   # P1 (never enrolled: not needed)
        "uuuuuuuuuurruuuuuuuu",   # P2 reclaimed during the computation phase
        "uuurruuuuuuuruuuuuuu",   # P3 reclaimed during communication and computation
        "uuuuuuuuuuuuuuuuuuuu",   # P4
        "uuuuuuuuuuuuuuuuuuuu",   # P5 (never enrolled)
    ])

    engine = SimulationEngine(
        platform, application, Figure1Scheduler(), trace=trace, max_slots=20,
        record_activity=True, record_events=True,
    )
    result = engine.run()

    print("One iteration of the Figure-1 example")
    print("-------------------------------------")
    print(f"makespan            : {result.makespan} slots")
    print(f"communication slots : {result.communication_slots}")
    print(f"computation slots   : {result.computation_slots}")
    print(f"suspended slots     : {result.idle_slots} (workers reclaimed)")
    print()
    print(render_gantt(engine.activity_matrix, engine.state_matrix,
                       worker_names=[p.name for p in platform]))
    print()
    print("Reading the chart: the master can serve only ncom = 2 workers per slot,")
    print("so P4 idles while P2/P3 download the program; reclaimed slots (·) merely")
    print("suspend the execution — had a worker gone DOWN (#), the whole iteration")
    print("would have restarted from scratch.")


if __name__ == "__main__":
    main()
