#!/usr/bin/env python
"""Explore the analytical machinery of Section V (Theorem 5.1).

For a set of volatile workers that are all UP right now, the paper derives:

* ``P₊^(S)``   — the probability that they will all be simultaneously UP
  again before any of them crashes;
* ``E^(S)(W)`` — the expected number of slots needed to accumulate ``W``
  slots of simultaneous computation, given that nobody crashes;
* the communication estimates ``E_comm`` / ``P_comm`` under the bounded
  multi-port master;
* the derived criteria (probability, expected time, yield, apparent yield)
  that drive the scheduling heuristics.

This example shows how these quantities expose the *speed versus reliability*
trade-off, and verifies one of them against a brute-force Monte-Carlo
simulation of the Markov chains.

Run with:  python examples/markov_analysis_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration, MarkovAvailabilityModel
from repro.analysis import AnalysisContext
from repro.availability.generators import paper_transition_matrix
from repro.platform import Platform, Processor
from repro.types import DOWN, UP
from repro.utils.tables import format_table


def build_platform() -> Platform:
    """Three archetypes: fast-but-flaky, balanced, slow-but-rock-solid."""
    archetypes = [
        ("fast & flaky", 1, (0.90, 0.90, 0.90)),
        ("balanced", 2, (0.95, 0.92, 0.90)),
        ("slow & solid", 4, (0.99, 0.95, 0.90)),
    ]
    processors = []
    for name, speed, stays in archetypes:
        model = MarkovAvailabilityModel(paper_transition_matrix(list(stays)))
        processors.append(Processor(speed=speed, capacity=5, availability=model, name=name))
    return Platform(processors, ncom=2, tprog=4, tdata=1)


def per_worker_table(context: AnalysisContext, platform: Platform) -> str:
    rows = []
    for worker_id, processor in enumerate(platform):
        quantities = context.quantities((worker_id,))
        rows.append([
            processor.name,
            processor.speed,
            round(processor.availability.availability(), 3),
            round(processor.availability.mean_time_to_failure(), 1),
            round(quantities.p_plus, 4),
            round(quantities.expected_time(8), 2),
        ])
    return format_table(
        rows,
        headers=["worker", "w_q", "avail", "MTTF", "P+ (alone)", "E(8 slots)"],
        align_right=[False, True, True, True, True, True],
    )


def configuration_table(context: AnalysisContext, platform: Platform) -> str:
    candidates = {
        "all 5 tasks on the fast flaky worker": Configuration({0: 5}),
        "all 5 tasks on the slow solid worker": Configuration({2: 5}),
        "split fast+balanced (3 + 2)": Configuration({0: 3, 1: 2}),
        "split across all three (2+2+1)": Configuration({0: 2, 1: 2, 2: 1}),
    }
    rows = []
    for label, configuration in candidates.items():
        estimate = context.evaluate(configuration)
        rows.append([
            label,
            configuration.workload(platform),
            round(estimate.success_probability, 3),
            round(estimate.expected_time, 1),
            round(estimate.apparent_yield, 4),
        ])
    return format_table(
        rows,
        headers=["configuration", "W", "P(success)", "E[time]", "apparent yield"],
        align_right=[False, True, True, True, True],
    )


def monte_carlo_check(context: AnalysisContext, platform: Platform,
                      workers=(0, 1), trials=20_000, seed=123) -> str:
    """Empirically validate P₊^(S) for a pair of workers."""
    models = [platform.processor(w).availability for w in workers]
    rng = np.random.default_rng(seed)
    successes = 0
    for _ in range(trials):
        states = [UP for _ in models]
        while True:
            states = [m.next_state(s, rng) for m, s in zip(models, states)]
            if any(s == DOWN for s in states):
                break
            if all(s == UP for s in states):
                successes += 1
                break
    empirical = successes / trials
    analytical = context.quantities(workers).p_plus
    return (
        f"P+ for workers {list(workers)}: analytical = {analytical:.4f}, "
        f"Monte-Carlo ({trials} trials) = {empirical:.4f}"
    )


def main() -> None:
    platform = build_platform()
    context = AnalysisContext(platform)

    print("Per-worker quantities (availability, mean time to failure, Theorem 5.1):")
    print(per_worker_table(context, platform))

    print("\nEvaluating candidate configurations for an iteration with m = 5 tasks")
    print("(probability and expected time include the communication phase,")
    print(" Tprog = 4, Tdata = 1, ncom = 2):")
    print(configuration_table(context, platform))

    print("\nCross-validation of the analytical probability against simulation:")
    print(monte_carlo_check(context, platform))

    print(
        "\nNote how concentrating the work on the fast flaky worker maximises raw\n"
        "speed but not the apparent yield, while the slow solid worker is safe but\n"
        "stretches the iteration: the yield criterion — the one driving the best\n"
        "heuristics of the paper — balances the two."
    )


if __name__ == "__main__":
    main()
