"""Regenerate the shipped example dataset ``desktop_week.csv``.

The recording is synthetic but shaped like the desktop-grid logs the paper's
Section II cites: one week of 15-minute slots (7 x 96 = 672 slots) for 12
interactive machines, each following an office-hours diurnal cycle — stable
nights, churny working hours — with per-machine volatility drawn from a
fixed seed.  Times in the CSV are seconds (900 per slot), so ingesting it
exercises the slot-discretisation path; ``catalog.json`` records the
``{"slot": 900}`` option so the directory works as a
:class:`repro.traces.formats.TraceCatalog`.

Run from the repository root to refresh the dataset (stable under the
pinned seed)::

    PYTHONPATH=src python examples/traces/make_dataset.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.availability.diurnal import DiurnalAvailabilityModel
from repro.availability.trace import AvailabilityTrace
from repro.traces.formats import write_interval_csv

HERE = Path(__file__).parent

NUM_NODES = 12
DAY_SLOTS = 96          # 15-minute slots
NUM_DAYS = 7
SECONDS_PER_SLOT = 900
SEED = 20130520         # HCW 2013 workshop date


def build_trace() -> AvailabilityTrace:
    rng = np.random.default_rng(SEED)
    rows = []
    for node in range(NUM_NODES):
        model = DiurnalAvailabilityModel.office_hours(
            day_length=DAY_SLOTS,
            office_fraction=float(rng.uniform(0.3, 0.45)),
            night_stay_up=float(rng.uniform(0.99, 0.998)),
            office_stay_up=float(rng.uniform(0.85, 0.95)),
            office_reclaim_bias=float(rng.uniform(0.7, 0.9)),
            crash_probability=float(rng.uniform(0.001, 0.004)),
            phase_offset=0,  # recorded machines share a wall clock
        )
        seed = int(rng.integers(0, 2**62))
        rows.append(model.sample_trajectory(DAY_SLOTS * NUM_DAYS, seed))
    return AvailabilityTrace(np.vstack(rows))


def main() -> None:
    trace = build_trace()
    csv_path = write_interval_csv(
        trace, HERE / "desktop_week.csv", slot_duration=SECONDS_PER_SLOT
    )
    (HERE / "catalog.json").write_text(
        json.dumps({"desktop_week": {"slot": SECONDS_PER_SLOT}}, indent=2) + "\n"
    )
    up = float(np.mean(trace.states == 0))
    print(
        f"wrote {csv_path} ({trace.num_processors} nodes x {trace.horizon} slots, "
        f"up fraction {up:.3f})"
    )


if __name__ == "__main__":
    main()
