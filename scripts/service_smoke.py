#!/usr/bin/env python
"""End-to-end service smoke: serve -> submit -> poll -> fetch report.

Starts ``repro serve`` as a real subprocess on a free port, submits the
two-cell walkthrough spec (``examples/service_walkthrough.toml``), polls
the campaign to completion over HTTP, fetches the HTML dashboard and
writes it to ``--output``.  Uses httpx when installed (the CI service
lane installs it), plain urllib otherwise, so the script also runs in a
dependency-free checkout.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py --output service_report.html
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

try:
    import httpx
except ImportError:  # pragma: no cover - exercised in minimal checkouts
    httpx = None


def request(method: str, url: str, payload: dict | None = None):
    """Return ``(status, body_bytes)`` using httpx or urllib."""
    if httpx is not None:
        response = httpx.request(method, url, json=payload, timeout=30.0)
        return response.status_code, response.content
    import urllib.request

    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=30.0) as response:
        return response.status, response.read()


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="service_report.html")
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    port = free_port()
    base = f"http://127.0.0.1:{port}"
    root = tempfile.mkdtemp(prefix="repro-service-smoke-")
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", root,
         "--port", str(port), "--workers", "2"],
        env=env, cwd=REPO,
    )
    try:
        deadline = time.monotonic() + args.timeout
        while True:
            try:
                status, _ = request("GET", f"{base}/healthz")
                if status == 200:
                    break
            except OSError:
                pass
            if time.monotonic() > deadline:
                raise SystemExit("service did not come up in time")
            time.sleep(0.2)

        status, body = request("GET", f"{base}/healthz")
        health = json.loads(body)
        assert health["status"] in ("ok", "degraded"), health
        for field in ("workers", "jobs", "queue_depth", "stale_jobs"):
            assert field in health, f"healthz missing {field!r}: {health}"
        assert health["stale_jobs"] == 0, health

        spec_toml = (REPO / "examples" / "service_walkthrough.toml").read_text()
        status, body = request("POST", f"{base}/campaigns", {"spec_toml": spec_toml})
        assert status == 201, (status, body)
        accepted = json.loads(body)
        print(f"submitted {accepted['id'][:12]} ({accepted['total_cells']} cells)")

        while True:
            status, body = request("GET", base + accepted["location"])
            assert status == 200, (status, body)
            campaign = json.loads(body)
            if campaign["status"] == "completed":
                break
            if campaign["status"] == "failed":
                raise SystemExit(f"campaign failed: {campaign['error']}")
            if time.monotonic() > deadline:
                raise SystemExit(f"campaign stuck at {campaign['status']}")
            time.sleep(0.5)
        assert campaign["completed_cells"] == campaign["total_cells"]
        print(f"completed {campaign['completed_cells']}/{campaign['total_cells']} cells")

        # A duplicate submit must attach to the finished run, not start a new one.
        status, body = request("POST", f"{base}/campaigns", {"spec_toml": spec_toml})
        assert status == 200 and json.loads(body)["deduplicated"], (status, body)

        # Prometheus scrape: exposition format with the request counters the
        # polling loop above just generated.
        status, body = request("GET", f"{base}/metrics")
        assert status == 200, status
        metrics = body.decode()
        for line in (
            "# TYPE repro_http_requests_total counter",
            "# TYPE repro_http_request_duration_seconds histogram",
            "# TYPE repro_job_queue_depth gauge",
            'repro_jobs{status="completed"}',
            'route="/campaigns/{id}"',
        ):
            assert line in metrics, f"metrics missing {line!r}"
        print(f"scraped /metrics ({len(metrics.splitlines())} lines)")

        # A short SSE read: a completed campaign streams snapshot -> end.
        status, body = request(
            "GET", f"{base}{accepted['location']}/events?limit=1&poll=0.05"
        )
        assert status == 200, status
        stream = body.decode()
        assert stream.startswith("retry: 2000"), stream[:50]
        assert "event: snapshot" in stream and "event: end" in stream, stream
        print("streamed SSE snapshot + end for the completed campaign")

        status, body = request("GET", base + accepted["report"])
        assert status == 200 and body.startswith(b"<!DOCTYPE html>"), status
        Path(args.output).write_bytes(body)
        print(f"wrote {args.output} ({len(body)} bytes)")
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
