"""Tests for the component registry core and the expression grammar."""

import pytest

from repro.components import (
    REQUIRED,
    ComponentError,
    ComponentExpression,
    ComponentParameter,
    ComponentRegistry,
    parse_expression,
)


# ----------------------------------------------------------------------
# Grammar: parsing and canonical round-trips
# ----------------------------------------------------------------------
class TestParseExpression:
    @pytest.mark.parametrize(
        "text, name, arguments",
        [
            ("IE", "IE", ()),
            ("Y-IE", "Y-IE", ()),
            ("FAST()", "FAST", ()),
            ("FAST(k=8)", "FAST", (("k", 8),)),
            ("x(a=1,b=2.5)", "x", (("a", 1), ("b", 2.5))),
            ("t(flag=true, other=FALSE)", "t", (("flag", True), ("other", False))),
            ("t(path='a b.json')", "t", (("path", "a b.json"),)),
            ('t(path="runs/trace.json")', "t", (("path", "runs/trace.json"),)),
            ("t(name=bare-word.v2)", "t", (("name", "bare-word.v2"),)),
            ("  spaced ( a = -3 ,  b = 1e-2 ) ", "spaced", (("a", -3), ("b", 0.01))),
        ],
    )
    def test_parse(self, text, name, arguments):
        expression = parse_expression(text)
        assert expression.name == name
        assert expression.arguments == arguments

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(k=1)",
            "FAST(k=8",          # unterminated call
            "FAST)k=8(",
            "FAST(8)",           # positional arguments are not allowed
            "FAST(k)",           # missing value
            "FAST(k=1, k=2)",    # duplicate key
            "FAST(k=')",         # unterminated string
            "FAST(k=@)",         # unparseable value
            "FAST(1k=2)",        # invalid identifier
            "42(k=1)",           # names must start with a letter
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ComponentError):
            parse_expression(text)

    def test_parse_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            parse_expression("???")

    @pytest.mark.parametrize(
        "text",
        ["IE", "FAST(k=8)", "t(a=0.5,b=true,c=hello)", 't(p="a, b")'],
    )
    def test_canonical_round_trip(self, text):
        once = parse_expression(text)
        canonical = once.canonical()
        again = parse_expression(canonical)
        assert again.name == once.name
        assert again.arguments == once.arguments
        assert again.canonical() == canonical

    def test_quoted_string_with_comma_survives(self):
        expression = parse_expression('t(p="a, b=c")')
        assert expression.arguments == (("p", "a, b=c"),)

    def test_strings_with_quotes_round_trip(self):
        # The grammar has no escapes: a string with one quote kind is wrapped
        # in the other, and canonical output must re-parse to the same value.
        for value in ['a"b', "a'b", "plain space"]:
            canonical = ComponentExpression("X", (("s", value),)).canonical()
            assert parse_expression(canonical).arguments == (("s", value),)

    def test_string_with_both_quote_kinds_is_rejected_loudly(self):
        with pytest.raises(ComponentError, match="both quote characters"):
            ComponentExpression("X", (("s", "a\"b'c"),)).canonical()


# ----------------------------------------------------------------------
# Registry: registration, introspection, resolution
# ----------------------------------------------------------------------
class Widget:
    def __init__(self, size: int = 3, ratio: float = 0.5, label: str = "w",
                 fancy: bool = False):
        self.size, self.ratio, self.label, self.fancy = size, ratio, label, fancy


def make_registry() -> ComponentRegistry:
    registry = ComponentRegistry("widget")
    registry.register(
        "WIDGET",
        Widget,
        family="test",
        description="a widget",
        aliases={"s": "size"},
    )
    return registry


class TestRegistry:
    def test_parameters_introspected_from_signature(self):
        info = make_registry().get("widget")
        by_name = {p.name: p for p in info.parameters}
        assert by_name["size"].kind is int and by_name["size"].default == 3
        assert by_name["ratio"].kind is float
        assert by_name["label"].kind is str
        assert by_name["fancy"].kind is bool
        assert by_name["size"].aliases == ("s",)

    def test_create_with_coercion(self):
        registry = make_registry()
        widget = registry.create("WIDGET(s=5, ratio=1, fancy=true, label=hi)")
        assert widget.size == 5
        assert widget.ratio == 1.0 and isinstance(widget.ratio, float)
        assert widget.fancy is True and widget.label == "hi"

    def test_canonical_sorts_and_resolves_aliases(self):
        registry = make_registry()
        assert (
            registry.canonical("widget( ratio = 0.25 , s = 1 )")
            == "WIDGET(ratio=0.25,size=1)"
        )

    def test_lookup_is_case_insensitive_but_canonical_spelling_wins(self):
        registry = make_registry()
        assert "widget" in registry and "WIDGET" in registry
        assert registry.resolve("wIdGeT").name == "WIDGET"

    def test_unknown_component(self):
        with pytest.raises(ComponentError, match="unknown widget"):
            make_registry().resolve("GADGET")

    def test_unknown_parameter(self):
        with pytest.raises(ComponentError, match="unknown parameter"):
            make_registry().resolve("WIDGET(bogus=1)")

    @pytest.mark.parametrize(
        "expression, match",
        [
            ("WIDGET(size=2.5)", "expects int"),
            ("WIDGET(size=true)", "expects int"),
            ("WIDGET(ratio=hello)", "expects float"),
            ("WIDGET(fancy=1)", "expects bool"),
            ("WIDGET(label=3)", "expects str"),
        ],
    )
    def test_bad_types(self, expression, match):
        with pytest.raises(ComponentError, match=match):
            make_registry().resolve(expression)

    def test_alias_and_canonical_together_rejected(self):
        with pytest.raises(ComponentError, match="more than once"):
            make_registry().resolve("WIDGET(s=1, size=2)")

    def test_required_parameters_enforced(self):
        registry = ComponentRegistry("thing")

        def factory(path: str):
            return path

        registry.register("NEEDY", factory, family="test")
        with pytest.raises(ComponentError, match="missing required"):
            registry.resolve("NEEDY")
        assert registry.create("NEEDY(path=x.json)") == "x.json"

    def test_duplicate_registration_rejected(self):
        registry = make_registry()
        with pytest.raises(ComponentError, match="already registered"):
            registry.register("widget", Widget, family="test")

    def test_decorator_form(self):
        registry = ComponentRegistry("thing")

        @registry.register("DECORATED", family="test", description="via decorator")
        class Thing:
            def __init__(self, n: int = 1):
                self.n = n

        assert registry.create("DECORATED(n=4)").n == 4
        assert registry.get("DECORATED").description == "via decorator"

    def test_names_families_and_infos(self):
        registry = ComponentRegistry("thing")
        registry.register("A", lambda: 1, family="x")
        registry.register("B", lambda: 2, family="y")
        registry.register("C", lambda: 3, family="x")
        assert registry.names() == ["A", "B", "C"]
        assert registry.names(family="x") == ["A", "C"]
        assert registry.families() == ["x", "y"]
        assert [info.name for info in registry.infos("y")] == ["B"]

    def test_explicit_parameter_specs_skip_introspection(self):
        registry = ComponentRegistry("thing")
        registry.register(
            "RANGED",
            lambda spec: spec,
            family="test",
            parameters=(
                ComponentParameter("mean", float, default=(1.0, 2.0)),
                ComponentParameter("path", str),
            ),
        )
        info = registry.get("RANGED")
        assert info.parameter("mean").default == (1.0, 2.0)
        assert info.parameter("path").required
        assert info.parameter("path").default is REQUIRED
        # the range default renders in spec-file spelling
        assert "mean: float = [1.0, 2.0]" in info.signature()


class TestComponentExpression:
    def test_canonical_of_bare_name(self):
        assert ComponentExpression("IE").canonical() == "IE"

    def test_canonical_value_formats(self):
        expression = ComponentExpression(
            "X", (("a", True), ("b", 0.5), ("c", 3), ("d", "plain"), ("e", "a b"))
        )
        assert expression.canonical() == 'X(a=true,b=0.5,c=3,d=plain,e="a b")'
