"""Tests for Monte Carlo band aggregation and the metrics campaign options."""

import dataclasses
from pathlib import Path

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.metrics import (
    DEFAULT_BAND_QUANTILES,
    aggregate_metric_bands,
)
from repro.experiments.runner import InstanceResult
from repro.experiments.spec import CampaignSpec, load_spec


def make_result(
    *,
    heuristic="IE",
    trial=0,
    series=None,
    stride=32,
    makespan=200,
    success=True,
    metrics=True,
):
    end_slot = makespan if success else 300
    payload = None
    if metrics:
        values = series if series is not None else [1.0, 2.0, 3.0]
        payload = {
            "stride": stride,
            "end_slot": end_slot,
            "scheduler": heuristic,
            "series": {"pool_up": list(values), "work_completed": list(values)},
        }
    return InstanceResult(
        heuristic=heuristic,
        m=4,
        ncom=5,
        wmin=1,
        scenario_index=0,
        trial_index=trial,
        success=success,
        makespan=makespan if success else None,
        completed_iterations=3,
        total_restarts=0,
        total_configuration_changes=1,
        wall_time_seconds=0.1,
        num_processors=8,
        metrics=payload,
    )


class TestAggregation:
    def test_hand_computed_quantiles(self):
        """Two runs with values 10 and 20: with numpy's default linear
        interpolation q0.1 = 11, q0.5 = 15, q0.9 = 19 at every grid point."""
        results = [
            make_result(trial=0, series=[10.0, 10.0]),
            make_result(trial=1, series=[20.0, 20.0]),
        ]
        bands = aggregate_metric_bands(results)
        assert len(bands) == 1
        band = bands[0]
        assert band.num_runs == 2
        assert band.quantiles == DEFAULT_BAND_QUANTILES
        assert band.series["pool_up"][0.1] == [11.0, 11.0]
        assert band.series["pool_up"][0.5] == [15.0, 15.0]
        assert band.series["pool_up"][0.9] == [19.0, 19.0]
        assert band.alive == [2, 2]
        assert band.makespan_quantiles[0.5] == 200.0

    def test_ragged_series_are_nan_padded(self):
        """A shorter run stops contributing where it ends; trailing grid
        points aggregate only the runs still alive."""
        results = [
            make_result(trial=0, series=[10.0, 10.0]),
            make_result(trial=1, series=[20.0, 20.0, 40.0]),
        ]
        band = aggregate_metric_bands(results)[0]
        assert band.alive == [2, 2, 1]
        assert band.series["pool_up"][0.5] == [15.0, 15.0, 40.0]
        assert band.slots() == [0, 32, 64]

    def test_groups_split_by_heuristic(self):
        results = [
            make_result(heuristic="IE", series=[1.0]),
            make_result(heuristic="RANDOM", series=[2.0]),
        ]
        bands = aggregate_metric_bands(results)
        assert [band.heuristic for band in bands] == ["IE", "RANDOM"]
        assert all(band.num_runs == 1 for band in bands)

    def test_mixed_strides_rejected(self):
        results = [
            make_result(trial=0, stride=32),
            make_result(trial=1, stride=64),
        ]
        with pytest.raises(ExperimentError):
            aggregate_metric_bands(results)

    def test_results_without_metrics_are_skipped(self):
        assert aggregate_metric_bands([make_result(metrics=False)]) == []
        mixed = [make_result(metrics=False), make_result(trial=1)]
        assert aggregate_metric_bands(mixed)[0].num_runs == 1

    def test_invalid_quantiles_rejected(self):
        with pytest.raises(ExperimentError):
            aggregate_metric_bands([make_result()], quantiles=(0.5, 1.5))
        with pytest.raises(ExperimentError):
            aggregate_metric_bands([make_result()], quantiles=())

    def test_failed_runs_have_no_makespan_quantiles(self):
        band = aggregate_metric_bands([make_result(success=False)])[0]
        assert band.failures == 1 and band.successes == 0
        assert band.makespan_quantiles[0.5] is None


class TestSpecOptions:
    def base_spec(self, **overrides):
        defaults = dict(
            name="bands-unit",
            m_values=(4,),
            ncom_values=(5,),
            wmin_values=(1,),
            num_processors_values=(8,),
            heuristics=("IE",),
            scenarios_per_cell=1,
            trials_per_scenario=1,
            iterations=3,
            makespan_cap=20_000,
        )
        defaults.update(overrides)
        return CampaignSpec(**defaults)

    def test_metrics_options_do_not_change_identity(self):
        """collect_metrics/metrics_stride are runtime options like base_dir:
        excluded from equality, as_dict and the resume-compatibility hash."""
        plain = self.base_spec()
        collecting = self.base_spec(collect_metrics=True, metrics_stride=16)
        assert plain == collecting
        assert plain.spec_hash() == collecting.spec_hash()
        assert "collect_metrics" not in plain.as_dict()
        assert "metrics_stride" not in collecting.as_dict()

    def test_invalid_stride_rejected(self):
        with pytest.raises(ExperimentError):
            self.base_spec(metrics_stride=0)

    def test_toml_keys_parse(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "[campaign]\n"
            'name = "toml-metrics"\n'
            "m = [4]\n"
            'heuristics = ["IE"]\n'
            "scenarios_per_cell = 1\n"
            "trials = 1\n"
            "iterations = 3\n"
            "makespan_cap = 20000\n"
            "collect_metrics = true\n"
            "metrics_stride = 16\n"
            "[grid]\n"
            "ncom = [5]\n"
            "wmin = [1]\n"
            "num_processors = [8]\n"
        )
        spec = load_spec(path)
        assert spec.collect_metrics is True
        assert spec.metrics_stride == 16

    def test_example_report_spec_collects_metrics(self):
        examples = Path(__file__).resolve().parents[2] / "examples"
        spec = load_spec(examples / "campaign_report.toml")
        assert spec.collect_metrics is True
        assert spec.metrics_stride == 32
        assert spec.num_cells() == 2
        # The runtime options must not leak into the resume hash.
        assert spec.spec_hash() == dataclasses.replace(
            spec, collect_metrics=False, metrics_stride=64
        ).spec_hash()
