"""Tests for the HTML campaign dashboard and the ``repro report`` command."""

import dataclasses

import pytest

from repro.cli import main
from repro.experiments.runner import run_campaign_spec
from repro.experiments.spec import builtin_spec
from repro.metrics import SERIES_NAMES
from repro.metrics.html import render_html_report


@pytest.fixture(scope="module")
def smoke_spec():
    return builtin_spec("smoke")


@pytest.fixture(scope="module")
def smoke_results(smoke_spec):
    return run_campaign_spec(smoke_spec, collect_metrics=True, metrics_stride=32)


class TestRenderHtmlReport:
    def test_full_report_structure(self, smoke_results, smoke_spec):
        html = render_html_report(smoke_results, smoke_spec)
        assert html.startswith("<!DOCTYPE html>")
        assert "Monte Carlo bands" in html
        assert "Gantt drill-down" in html
        # One band chart per (cell, series) with both heuristics overlaid.
        assert html.count("<svg") == len(SERIES_NAMES)
        for name in SERIES_NAMES:
            assert name in html
        for heuristic in smoke_spec.heuristics:
            assert heuristic in html
        # The Gantt section re-simulates one run per heuristic.
        assert html.count("<pre>") >= 2

    def test_no_results_is_friendly(self, smoke_spec):
        html = render_html_report([], smoke_spec)
        assert "no completed cells" in html
        assert "No stored runs carry metric series" in html
        assert "No successful runs" in html

    def test_results_without_metrics_still_render(self, smoke_spec):
        results = run_campaign_spec(smoke_spec)
        html = render_html_report(results, smoke_spec)
        assert "No stored runs carry metric series" in html
        assert "--collect-metrics" in html
        assert html.count("<pre>") >= 2  # tables and Gantt unaffected

    def test_missing_spec_degrades(self, smoke_results):
        html = render_html_report(smoke_results, None)
        assert "tables skipped" in html
        assert "Gantt drill-down skipped" in html
        assert "<svg" in html  # bands need no spec

    def test_gantt_disabled_or_capped(self, smoke_results, smoke_spec):
        assert "<pre>" not in render_html_report(
            smoke_results, smoke_spec, gantt_runs=0
        ).split("Gantt drill-down")[1]
        huge = dataclasses.replace(smoke_spec, makespan_cap=1_000_000)
        html = render_html_report(smoke_results, huge)
        assert "exceeds the re-simulation limit" in html

    def test_labels_are_escaped(self, smoke_results, smoke_spec):
        spooky = dataclasses.replace(smoke_spec, name="<b>smoke & mirrors</b>")
        html = render_html_report(smoke_results, spooky)
        assert "<b>smoke & mirrors</b>" not in html
        assert "&lt;b&gt;smoke &amp; mirrors&lt;/b&gt;" in html


class TestReportCommand:
    def run_campaign_cli(self, store, *extra):
        code = main(
            ["campaign", "--builtin", "smoke", "--store", str(store),
             "--report", "none", *extra]
        )
        assert code == 0

    def test_text_and_html_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        self.run_campaign_cli(store, "--collect-metrics", "--metrics-stride", "32")
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Campaign 'smoke'" in out
        assert "Heuristic" in out

        assert main(["report", str(store), "--html"]) == 0
        destination = store / "report.html"
        assert destination.exists()
        html = destination.read_text()
        assert "<svg" in html
        assert "pool_up" in html

    def test_html_output_path_and_gantt_flag(self, tmp_path):
        store = tmp_path / "store"
        self.run_campaign_cli(store, "--collect-metrics")
        output = tmp_path / "deep" / "dir" / "dash.html"
        assert main(["report", str(store), "--html", "--output", str(output),
                     "--gantt", "0"]) == 0
        assert output.exists()

    def test_empty_store_is_friendly(self, tmp_path, capsys):
        store = tmp_path / "store"
        self.run_campaign_cli(store, "--max-cells", "0")
        assert main(["report", str(store)]) == 0
        assert "no completed cells yet" in capsys.readouterr().out
        assert main(["report", str(store), "--html"]) == 0
        assert not (store / "report.html").exists()

    def test_missing_store_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "report:" in capsys.readouterr().err

    def test_store_without_metrics_still_reports(self, tmp_path, capsys):
        store = tmp_path / "store"
        self.run_campaign_cli(store)
        assert main(["report", str(store), "--html"]) == 0
        html = (store / "report.html").read_text()
        assert "No stored runs carry metric series" in html
