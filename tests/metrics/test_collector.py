"""Tests for the per-slot metrics collector (repro.metrics.collector).

The central guarantee: attaching a collector never changes a simulation's
result (all hooks are read-only), and a disabled collector costs nothing —
the golden-seed runs must stay bit-identical either way.
"""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.exceptions import SimulationError
from repro.metrics import DEFAULT_STRIDE, SERIES_NAMES, MetricsCollector, RunMetrics
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling import create_scheduler
from repro.simulation import MultiHeuristicDriver, SimulationEngine

from tests.simulation.test_golden_replay import GOLDEN_CASES, RESULT_FIELDS, run_case

EXACT_SERIES = (
    "pool_up",
    "pool_down",
    "active_workers",
    "enrollment_churn",
    "iterations_completed",
)


def make_engine(
    *,
    heuristic="IE",
    seed=11,
    max_slots=20_000,
    iterations=5,
    metrics=None,
    sampler="kernel",
    record_activity=False,
):
    platform = paper_platform(
        PlatformSpec(num_processors=10, ncom=5, wmin=1), num_tasks=4, seed=seed
    )
    application = Application(tasks_per_iteration=4, iterations=iterations)
    return SimulationEngine(
        platform,
        application,
        create_scheduler(heuristic),
        seed=seed,
        max_slots=max_slots,
        analysis=AnalysisContext(platform),
        sampler=sampler,
        metrics=metrics,
        record_activity=record_activity,
    )


def golden_id(case):
    return f"{case['kind']}-{case['heuristic']}-s{case['seed']}"


class TestBitIdentity:
    @pytest.mark.parametrize("case", GOLDEN_CASES, ids=golden_id)
    def test_collector_leaves_golden_results_unchanged(self, case):
        """Scalar results with a live collector match the golden seeds exactly."""
        collector = MetricsCollector()
        result = run_case(case, sampler="kernel", metrics=collector)
        for field in RESULT_FIELDS:
            assert getattr(result, field) == case[field], field
        metrics = collector.result()
        assert metrics.num_samples == len(metrics.series["pool_up"])
        assert set(metrics.series) == set(SERIES_NAMES)

    def test_collector_on_equals_collector_off(self):
        with_collector = make_engine(metrics=MetricsCollector()).run()
        without = make_engine().run()
        for field in RESULT_FIELDS:
            assert getattr(with_collector, field) == getattr(without, field), field


class TestSeriesSemantics:
    def test_num_samples_law_and_slots(self):
        collector = MetricsCollector(stride=64)
        engine = make_engine(metrics=collector)
        result = engine.run()
        metrics = collector.result()
        end = result.makespan if result.success else engine.max_slots
        assert metrics.end_slot == end
        assert metrics.num_samples == (end - 1) // 64 + 1
        for name in SERIES_NAMES:
            assert len(metrics.series[name]) == metrics.num_samples
        assert metrics.slots() == [i * 64 for i in range(metrics.num_samples)]

    def test_stride_one_matches_recorded_activity(self):
        """With every slot visited (record_activity disables fast-forward),
        a stride-1 collector reproduces the recorded pool states exactly."""
        collector = MetricsCollector(stride=1)
        engine = make_engine(metrics=collector, record_activity=True)
        result = engine.run()
        assert result.success
        metrics = collector.result()
        states = engine.state_matrix
        assert len(metrics.series["pool_up"]) == result.makespan
        expected_up = (states == 0).sum(axis=0)
        expected_down = (states == 2).sum(axis=0)
        assert metrics.series["pool_up"] == expected_up.tolist()
        assert metrics.series["pool_down"] == expected_down.tolist()
        assert metrics.series["iterations_completed"][-1] == result.completed_iterations
        assert metrics.series["work_completed"][-1] == result.computation_slots

    def test_monotone_series(self):
        collector = MetricsCollector(stride=16)
        make_engine(metrics=collector).run()
        metrics = collector.result()
        for name in ("enrollment_churn", "iterations_completed", "work_completed"):
            values = metrics.series[name]
            assert all(b >= a for a, b in zip(values, values[1:])), name

    def test_exact_series_are_sampler_invariant(self):
        """The five exact series must agree across every engine driver; the
        two interpolated ones may differ inside fast-forwarded spans."""
        per_sampler = {}
        for sampler in ("block", "perslot", "kernel"):
            collector = MetricsCollector(stride=32)
            make_engine(metrics=collector, sampler=sampler).run()
            per_sampler[sampler] = collector.result()
        reference = per_sampler["block"]
        for other in (per_sampler["perslot"], per_sampler["kernel"]):
            assert other.end_slot == reference.end_slot
            for name in EXACT_SERIES:
                assert other.series[name] == reference.series[name], name


class TestLifecycle:
    def test_result_before_run_raises(self):
        with pytest.raises(SimulationError):
            MetricsCollector().result()

    def test_invalid_stride_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector(stride=0)

    def test_collector_is_reusable_across_runs(self):
        collector = MetricsCollector(stride=32)
        make_engine(metrics=collector, seed=3).run()
        first = collector.result()
        make_engine(metrics=collector, seed=4).run()
        second = collector.result()
        assert first is not second
        assert first.series["pool_up"] != second.series["pool_up"]

    def test_round_trip_through_dict(self):
        collector = MetricsCollector(stride=32)
        make_engine(metrics=collector).run()
        metrics = collector.result()
        payload = metrics.as_dict()
        restored = RunMetrics.from_dict(payload)
        assert restored.stride == metrics.stride
        assert restored.end_slot == metrics.end_slot
        assert restored.scheduler == metrics.scheduler
        # as_dict rounds floats to 3 decimals; a second round trip is exact.
        assert RunMetrics.from_dict(restored.as_dict()) == restored


class TestMultiRun:
    def test_per_engine_collectors(self):
        platform = paper_platform(
            PlatformSpec(num_processors=10, ncom=5, wmin=1), num_tasks=4, seed=11
        )
        application = Application(tasks_per_iteration=4, iterations=5)
        schedulers = [create_scheduler(name) for name in ("IE", "RANDOM")]
        collectors = [MetricsCollector(stride=32) for _ in schedulers]
        driver = MultiHeuristicDriver(
            platform,
            application,
            schedulers,
            seed=11,
            max_slots=20_000,
            analysis=AnalysisContext(platform),
            metrics=collectors,
        )
        results = driver.run()
        for result, collector in zip(results, collectors):
            metrics = collector.result()
            end = result.makespan if result.success else 20_000
            assert metrics.end_slot == end

    def test_collector_count_mismatch_rejected(self):
        platform = paper_platform(
            PlatformSpec(num_processors=10, ncom=5, wmin=1), num_tasks=4, seed=11
        )
        application = Application(tasks_per_iteration=4, iterations=5)
        with pytest.raises(SimulationError):
            MultiHeuristicDriver(
                platform,
                application,
                [create_scheduler("IE"), create_scheduler("RANDOM")],
                seed=11,
                max_slots=20_000,
                metrics=[MetricsCollector()],
            )
