"""End-to-end campaign subsystem tests: resume, sharding, CLI, substrates.

These are the acceptance properties of the campaign subsystem:

* a campaign killed mid-run and resumed produces a result store equivalent
  (ignoring wall-clock measurements) to the same campaign run uninterrupted;
* ``--shard 1/2`` + ``--shard 2/2`` + merge reproduces the unsharded store;
* the whole path works through the CLI from a spec file.
"""

import json

import pytest

from repro.experiments.runner import run_campaign, run_campaign_spec
from repro.experiments.spec import CampaignSpec, builtin_spec
from repro.experiments.store import ResultStore, merge_stores

pytestmark = pytest.mark.slow


def smoke_spec(**overrides):
    spec = builtin_spec("smoke")
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)
    return spec


def normalized_records(store_dir):
    """Store records with volatile wall-time zeroed, in file order."""
    lines = (store_dir / "results.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in lines]
    for record in records:
        record["wall_time_seconds"] = 0.0
    return records


class TestResume:
    def test_interrupted_resume_matches_uninterrupted(self, tmp_path):
        spec = smoke_spec()
        full = ResultStore.create(tmp_path / "full", spec)
        run_campaign_spec(spec, store=full)
        full.close()

        interrupted = ResultStore.create(tmp_path / "interrupted", spec)
        run_campaign_spec(spec, store=interrupted, max_cells=2)
        interrupted.close()
        assert len(ResultStore.open(tmp_path / "interrupted")) == 2

        resumed = ResultStore.open(tmp_path / "interrupted")
        run_campaign_spec(spec, store=resumed)
        resumed.close()

        assert normalized_records(tmp_path / "full") == normalized_records(
            tmp_path / "interrupted"
        )

    def test_resume_skips_completed_cells(self, tmp_path):
        spec = smoke_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        run_campaign_spec(spec, store=store)
        events = []
        run_campaign_spec(spec, store=store, cell_progress=events.append)
        store.close()
        assert len(events) == 1 and events[0].skipped
        assert events[0].done == events[0].total == spec.num_cells()

    def test_progress_reports_accurate_totals_after_resume(self, tmp_path):
        spec = smoke_spec()
        store = ResultStore.create(tmp_path / "c", spec)
        run_campaign_spec(spec, store=store, max_cells=1)
        events = []
        run_campaign_spec(spec, store=store, cell_progress=events.append)
        store.close()
        assert events[0].skipped and events[0].done == 1
        fresh = [event for event in events if not event.skipped]
        assert [event.done for event in fresh] == list(range(2, spec.num_cells() + 1))
        assert all(event.total == spec.num_cells() for event in fresh)
        assert fresh[0].scenario and fresh[0].heuristic


class TestSharding:
    def test_shards_plus_merge_reproduce_unsharded_store(self, tmp_path):
        spec = smoke_spec()
        full = ResultStore.create(tmp_path / "full", spec)
        run_campaign_spec(spec, store=full)
        full.close()

        for shard_index in (1, 2):
            store = ResultStore.create(tmp_path / f"shard{shard_index}", spec)
            run_campaign_spec(spec, store=store, shard=(shard_index, 2))
            store.close()
        merged = merge_stores(
            [tmp_path / "shard1", tmp_path / "shard2"], tmp_path / "merged"
        )
        merged.close()

        assert normalized_records(tmp_path / "full") == normalized_records(
            tmp_path / "merged"
        )

    def test_parallel_matches_serial(self, tmp_path):
        spec = smoke_spec()
        serial = run_campaign_spec(spec)
        parallel = run_campaign_spec(spec, n_jobs=2)
        assert [r.makespan for r in serial] == [r.makespan for r in parallel]


class TestSpecMatchesLegacyCampaign:
    def test_default_markov_spec_reproduces_run_campaign(self):
        """The spec path must be bit-identical to the legacy runner."""
        spec = CampaignSpec(
            name="legacy",
            m_values=(4,),
            ncom_values=(5,),
            wmin_values=(1,),
            num_processors_values=(8,),
            heuristics=("IE", "RANDOM"),
            scenarios_per_cell=1,
            trials_per_scenario=2,
            iterations=2,
            makespan_cap=20_000,
        )
        legacy = run_campaign(
            4,
            heuristics=("IE", "RANDOM"),
            scale=spec.scale_for(8),
            label="legacy",
        )
        via_spec = run_campaign_spec(spec)
        legacy_map = {(r.instance_key(), r.heuristic): r.makespan for r in legacy.results}
        spec_map = {(r.instance_key(), r.heuristic): r.makespan for r in via_spec}
        assert legacy_map == spec_map


class TestLegacyCellProgress:
    def test_run_campaign_emits_per_cell_events(self):
        spec = smoke_spec()
        events = []
        run_campaign(
            4,
            heuristics=("IE", "RANDOM"),
            scale=spec.scale_for(8),
            label="cells",
            cell_progress=events.append,
        )
        assert len(events) == 4
        assert [event.done for event in events] == [1, 2, 3, 4]
        assert {event.heuristic for event in events} == {"IE", "RANDOM"}
        assert all(event.total == 4 and event.scenario for event in events)


class TestCliEndToEnd:
    def test_spec_run_interrupt_resume_merge_tables(self, tmp_path, capsys):
        """The nightly smoke, in-process: spec file -> run -> interrupt-resume
        -> shard -> merge -> tables."""
        from repro.cli import main

        spec_payload = {
            "campaign": {
                "name": "cli-e2e",
                "m": [4],
                "heuristics": ["IE", "RANDOM"],
                "scenarios_per_cell": 1,
                "trials": 2,
                "iterations": 3,
                "makespan_cap": 30_000,
            },
            "grid": {"ncom": [5], "wmin": [1], "num_processors": [8]},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec_payload))

        base = ["campaign", "--spec", str(spec_path)]
        # Interrupted run, then resume.
        assert main(base + ["--store", str(tmp_path / "s"), "--max-cells", "2"]) == 0
        assert main(base + ["--store", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "Campaign 'cli-e2e'" in out and "RANDOM" in out
        # Status.
        assert main(base + ["--store", str(tmp_path / "s"), "--status"]) == 0
        assert "100.0%" in capsys.readouterr().out
        # Shards + merge must reproduce the unsharded store.
        assert main(base + ["--store", str(tmp_path / "a"), "--shard", "1/2",
                            "--report", "none"]) == 0
        assert main(base + ["--store", str(tmp_path / "b"), "--shard", "2/2",
                            "--report", "none"]) == 0
        assert main(["merge", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--output", str(tmp_path / "merged")]) == 0
        assert "Heuristic" in capsys.readouterr().out
        assert normalized_records(tmp_path / "s") == normalized_records(
            tmp_path / "merged"
        )

    def test_builtin_sqlite_backend(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "campaign", "--builtin", "smoke", "--store", str(tmp_path / "sq"),
            "--backend", "sqlite", "--report", "none",
        ]) == 0
        store = ResultStore.open(tmp_path / "sq")
        assert store.backend == "sqlite"
        assert len(store) == 4
        store.close()


class TestAvailabilitySubstrates:
    @pytest.mark.parametrize("kind", ["semi-markov", "diurnal"])
    def test_substrate_campaigns_run_and_are_deterministic(self, kind):
        spec = smoke_spec(availability={"kind": kind}, name=f"sub-{kind}")
        first = run_campaign_spec(spec)
        second = run_campaign_spec(spec)
        assert [r.makespan for r in first] == [r.makespan for r in second]
        assert all(r.completed_iterations > 0 or not r.success for r in first)

    def test_trace_substrate(self, tmp_path):
        rows = ["u" * 400 for _ in range(8)]
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps({"type": "trace", "rows": rows}))
        spec = smoke_spec(
            availability={"kind": "trace", "path": str(trace_path)}, name="sub-trace"
        )
        results = run_campaign_spec(spec)
        assert all(r.success for r in results)
