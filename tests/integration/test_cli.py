"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure2", "demo", "offline", "heuristics"):
            args = parser.parse_args([command] if command in ("heuristics",) else [command])
            assert args.command == command

    def test_campaign_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table1", "--scale", "smoke", "--trials", "3", "--wmin", "1", "2",
             "--jobs", "2", "--estimator", "renewal"]
        )
        assert args.scale == "smoke"
        assert args.trials == 3
        assert args.wmin == [1, 2]
        assert args.estimator == "renewal"


class TestCommands:
    def test_heuristics_lists_all(self, capsys):
        assert main(["heuristics"]) == 0
        out = capsys.readouterr().out
        assert "RANDOM" in out
        assert "Y-IE" in out
        assert len(out.strip().splitlines()) == 17

    def test_offline_command(self, capsys):
        assert main(["offline", "--left", "5", "--right", "6", "--a", "2", "--b", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "OFF-LINE-COUPLED" in out

    @pytest.mark.slow
    def test_demo_command(self, capsys):
        assert main(["demo", "--heuristic", "IE", "--m", "3", "--processors", "6",
                     "--iterations", "1", "--wmin", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "legend" in out  # the Gantt chart was printed

    @pytest.mark.slow
    def test_table1_smoke(self, capsys, tmp_path):
        output = tmp_path / "t1.json"
        code = main([
            "table1", "--scale", "smoke", "--heuristics", "IE", "RANDOM",
            "--iterations", "2", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "RANDOM" in out
        payload = json.loads(output.read_text())
        assert payload["label"] == "table1"

    @pytest.mark.slow
    def test_figure2_smoke(self, capsys):
        code = main([
            "figure2", "--scale", "smoke", "--heuristics", "IE", "Y-IE",
            "--iterations", "2", "--wmin", "1", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wmin" in out
