"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure2", "demo", "offline", "heuristics",
                        "campaign"):
            args = parser.parse_args([command] if command in ("heuristics",) else [command])
            assert args.command == command

    def test_campaign_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table1", "--scale", "smoke", "--trials", "3", "--wmin", "1", "2",
             "--jobs", "2", "--estimator", "renewal"]
        )
        assert args.scale == "smoke"
        assert args.trials == 3
        assert args.wmin == [1, 2]
        assert args.estimator == "renewal"

    def test_campaign_spec_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--builtin", "smoke", "--store", "runs/x", "--shard", "2/4",
             "--backend", "sqlite", "--max-cells", "7", "--report", "none"]
        )
        assert args.builtin == "smoke"
        assert args.shard == "2/4"
        assert args.backend == "sqlite"
        assert args.max_cells == 7

    def test_merge_options(self):
        parser = build_parser()
        args = parser.parse_args(["merge", "a", "b", "--output", "m"])
        assert args.stores == ["a", "b"]
        assert args.output == "m"

    def test_sampler_option_defaults_to_kernel(self):
        parser = build_parser()
        for argv in (["table1"], ["campaign", "--builtin", "smoke"], ["demo"]):
            assert parser.parse_args(argv).sampler == "kernel"
        args = parser.parse_args(["campaign", "--builtin", "smoke",
                                  "--sampler", "perslot"])
        assert args.sampler == "perslot"

    def test_spec_and_builtin_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--spec", "x.toml", "--builtin", "smoke"])

    def test_bad_shard_format(self):
        from repro.cli import _parse_shard
        from repro.exceptions import ExperimentError

        assert _parse_shard("2/4") == (2, 4)
        with pytest.raises(ExperimentError):
            _parse_shard("2-4")


class TestSamplerRejection:
    """Unknown --sampler values surface the registry-style error, exit 2."""

    @pytest.mark.parametrize("argv", [
        ["campaign", "--builtin", "smoke", "--sampler", "bogus"],
        ["table1", "--scale", "smoke", "--sampler", "bogus"],
        ["demo", "--sampler", "bogus"],
    ])
    def test_unknown_sampler_rejected(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown sampler 'bogus'" in err
        assert "available samplers:" in err


class TestCampaignCommandErrors:
    def test_campaign_without_source_errors(self, capsys):
        assert main(["campaign"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_status_without_store_errors(self, capsys):
        assert main(["campaign", "--builtin", "smoke", "--status"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_status_on_missing_store_does_not_create_it(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["campaign", "--builtin", "smoke", "--store", str(missing),
                     "--status"]) == 2
        assert "campaign:" in capsys.readouterr().err
        assert not missing.exists()

    def test_list_builtins(self, capsys):
        assert main(["campaign", "--list-builtins"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "smoke" in out


class TestCommands:
    def test_heuristics_lists_all(self, capsys):
        assert main(["heuristics"]) == 0
        out = capsys.readouterr().out
        # The listing covers the paper's seventeen AND the extensions, with
        # family / parameter / description columns.
        assert "RANDOM" in out
        assert "Y-IE" in out
        assert "THRESHOLD-IE" in out
        assert "threshold: float = 0.5" in out
        assert "alias: tau" in out
        assert "proactive" in out

    def test_heuristics_names_only_matches_registry(self, capsys):
        from repro.scheduling.registry import available_heuristics

        assert main(["heuristics", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == available_heuristics()

    def test_heuristics_family_filter(self, capsys):
        assert main(["heuristics", "--family", "extension", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == ["FAST", "THRESHOLD-IE", "STICKY"]
        assert main(["heuristics", "--family", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown family" in err

    def test_models_lists_substrates(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for kind in ("markov", "semi-markov", "diurnal", "trace",
                     "degradation", "correlated", "churn"):
            assert kind in out
        # Full per-parameter specs: name, type, default, aliases.
        assert "mean_up" in out
        assert "parameter" in out and "default" in out and "aliases" in out
        assert "(required)" in out          # trace substrates' path parameter
        assert "wear_rate" in out
        assert "[0.02, 0.05]" in out        # range default, spec-file spelling
        assert "kind" in out                # the fitted substrate's model alias

    def test_models_family_filter(self, capsys):
        assert main(["models", "--family", "hazard", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == ["degradation", "correlated", "churn"]
        assert main(["models", "--family", "bogus"]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_models_names_only(self, capsys):
        assert main(["models", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == [
            "markov", "semi-markov", "diurnal", "trace",
            "trace-catalog", "trace-bootstrap", "fitted",
            "degradation", "correlated", "churn",
        ]

    def test_traces_pipeline_end_to_end(self, capsys, tmp_path):
        """convert -> stats -> fit -> sample over the shipped example dataset."""
        dataset = str(EXAMPLES_DIR / "traces" / "desktop_week.csv")
        converted = tmp_path / "week.json"
        assert main([
            "traces", "convert", dataset, "--slot", "900", "--output", str(converted),
        ]) == 0
        assert "12 processors x 672 slots" in capsys.readouterr().out

        assert main(["traces", "stats", str(converted), "--censor-edges"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out and "pooled" in out

        assert main(["traces", "fit", str(converted), "--kind", "all"]) == 0
        out = capsys.readouterr().out
        for kind in ("markov", "semi-markov", "diurnal"):
            assert kind in out
        assert "KS" in out

        sampled = tmp_path / "sampled.json"
        assert main([
            "traces", "sample", str(converted), "--kind", "semi-markov",
            "--processors", "4", "--length", "300", "--seed", "5",
            "--output", str(sampled),
        ]) == 0
        payload = json.loads(sampled.read_text())
        assert payload["type"] == "trace"
        assert len(payload["rows"]) == 4
        assert len(payload["rows"][0]) == 300

    def test_traces_catalog_input_requires_dataset(self, capsys):
        catalog = str(EXAMPLES_DIR / "traces")
        assert main(["traces", "stats", catalog]) == 2
        assert "--dataset" in capsys.readouterr().err
        assert main(["traces", "stats", catalog, "--dataset", "desktop_week"]) == 0
        assert "pooled" in capsys.readouterr().out

    def test_traces_bad_input_is_reported(self, capsys, tmp_path):
        missing = tmp_path / "nope.csv"
        assert main(["traces", "stats", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_traces_sample_rejects_zero_counts(self, capsys, tmp_path):
        dataset = str(EXAMPLES_DIR / "traces" / "desktop_week.csv")
        assert main([
            "traces", "sample", dataset, "--slot", "900", "--processors", "0",
            "--output", str(tmp_path / "out.json"),
        ]) == 2
        assert "--processors" in capsys.readouterr().err

    def test_traces_sample_csv_output_slot_round_trips(self, capsys, tmp_path):
        dataset = str(EXAMPLES_DIR / "traces" / "desktop_week.csv")
        out = tmp_path / "boot.csv"
        assert main([
            "traces", "sample", dataset, "--slot", "900", "--kind", "bootstrap",
            "--block", "96", "--processors", "4", "--seed", "3",
            "--output", str(out), "--output-slot", "900",
        ]) == 0
        capsys.readouterr()
        # The sampled CSV reloads at the same slot duration it was written at.
        assert main(["traces", "stats", str(out), "--slot", "900"]) == 0
        assert "4 processors x 672 slots" in capsys.readouterr().out

    def test_offline_command(self, capsys):
        assert main(["offline", "--left", "5", "--right", "6", "--a", "2", "--b", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "OFF-LINE-COUPLED" in out

    @pytest.mark.slow
    def test_demo_command(self, capsys):
        assert main(["demo", "--heuristic", "IE", "--m", "3", "--processors", "6",
                     "--iterations", "1", "--wmin", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "legend" in out  # the Gantt chart was printed

    @pytest.mark.slow
    def test_table1_smoke(self, capsys, tmp_path):
        output = tmp_path / "t1.json"
        code = main([
            "table1", "--scale", "smoke", "--heuristics", "IE", "RANDOM",
            "--iterations", "2", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "RANDOM" in out
        payload = json.loads(output.read_text())
        assert payload["label"] == "table1"

    @pytest.mark.slow
    def test_figure2_smoke(self, capsys):
        code = main([
            "figure2", "--scale", "smoke", "--heuristics", "IE", "Y-IE",
            "--iterations", "2", "--wmin", "1", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wmin" in out
