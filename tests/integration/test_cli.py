"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure2", "demo", "offline", "heuristics",
                        "campaign"):
            args = parser.parse_args([command] if command in ("heuristics",) else [command])
            assert args.command == command

    def test_campaign_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table1", "--scale", "smoke", "--trials", "3", "--wmin", "1", "2",
             "--jobs", "2", "--estimator", "renewal"]
        )
        assert args.scale == "smoke"
        assert args.trials == 3
        assert args.wmin == [1, 2]
        assert args.estimator == "renewal"

    def test_campaign_spec_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--builtin", "smoke", "--store", "runs/x", "--shard", "2/4",
             "--backend", "sqlite", "--max-cells", "7", "--report", "none"]
        )
        assert args.builtin == "smoke"
        assert args.shard == "2/4"
        assert args.backend == "sqlite"
        assert args.max_cells == 7

    def test_merge_options(self):
        parser = build_parser()
        args = parser.parse_args(["merge", "a", "b", "--output", "m"])
        assert args.stores == ["a", "b"]
        assert args.output == "m"

    def test_spec_and_builtin_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--spec", "x.toml", "--builtin", "smoke"])

    def test_bad_shard_format(self):
        from repro.cli import _parse_shard
        from repro.exceptions import ExperimentError

        assert _parse_shard("2/4") == (2, 4)
        with pytest.raises(ExperimentError):
            _parse_shard("2-4")


class TestCampaignCommandErrors:
    def test_campaign_without_source_errors(self, capsys):
        assert main(["campaign"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_status_without_store_errors(self, capsys):
        assert main(["campaign", "--builtin", "smoke", "--status"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_status_on_missing_store_does_not_create_it(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["campaign", "--builtin", "smoke", "--store", str(missing),
                     "--status"]) == 2
        assert "campaign:" in capsys.readouterr().err
        assert not missing.exists()

    def test_list_builtins(self, capsys):
        assert main(["campaign", "--list-builtins"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "smoke" in out


class TestCommands:
    def test_heuristics_lists_all(self, capsys):
        assert main(["heuristics"]) == 0
        out = capsys.readouterr().out
        # The listing covers the paper's seventeen AND the extensions, with
        # family / parameter / description columns.
        assert "RANDOM" in out
        assert "Y-IE" in out
        assert "THRESHOLD-IE" in out
        assert "threshold: float = 0.5" in out
        assert "alias: tau" in out
        assert "proactive" in out

    def test_heuristics_names_only_matches_registry(self, capsys):
        from repro.scheduling.registry import available_heuristics

        assert main(["heuristics", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == available_heuristics()

    def test_heuristics_family_filter(self, capsys):
        assert main(["heuristics", "--family", "extension", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == ["FAST", "THRESHOLD-IE", "STICKY"]
        assert main(["heuristics", "--family", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown family" in err

    def test_models_lists_substrates(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for kind in ("markov", "semi-markov", "diurnal", "trace"):
            assert kind in out
        assert "mean_up" in out
        assert "path: str" in out

    def test_models_names_only(self, capsys):
        assert main(["models", "--names-only"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == ["markov", "semi-markov", "diurnal", "trace"]

    def test_offline_command(self, capsys):
        assert main(["offline", "--left", "5", "--right", "6", "--a", "2", "--b", "2",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "OFF-LINE-COUPLED" in out

    @pytest.mark.slow
    def test_demo_command(self, capsys):
        assert main(["demo", "--heuristic", "IE", "--m", "3", "--processors", "6",
                     "--iterations", "1", "--wmin", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "legend" in out  # the Gantt chart was printed

    @pytest.mark.slow
    def test_table1_smoke(self, capsys, tmp_path):
        output = tmp_path / "t1.json"
        code = main([
            "table1", "--scale", "smoke", "--heuristics", "IE", "RANDOM",
            "--iterations", "2", "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "RANDOM" in out
        payload = json.loads(output.read_text())
        assert payload["label"] == "table1"

    @pytest.mark.slow
    def test_figure2_smoke(self, capsys):
        code = main([
            "figure2", "--scale", "smoke", "--heuristics", "IE", "Y-IE",
            "--iterations", "2", "--wmin", "1", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wmin" in out
