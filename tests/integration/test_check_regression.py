"""Tests for the CI benchmark-regression gate (benchmarks/check_regression.py)."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def make_report(scale=1.0):
    runs = []
    for heuristic in ("RANDOM", "IE"):
        for mode in ("legacy", "block"):
            runs.append(
                {
                    "mode": mode,
                    "heuristic": heuristic,
                    "workers": 20,
                    "slots": 100_000,
                    "wall_seconds": 1.0,
                    "slots_per_second": scale * (40_000 if mode == "block" else 15_000),
                }
            )
    return {"benchmark": "simulator_throughput", "python": "3.11", "runs": runs}


def run_gate(tmp_path, baseline, current, *extra):
    baseline_path = tmp_path / "baseline.json"
    current_path = tmp_path / "current.json"
    baseline_path.write_text(json.dumps(baseline))
    current_path.write_text(json.dumps(current))
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--baseline", str(baseline_path),
         "--current", str(current_path), *extra],
        capture_output=True,
        text=True,
    )


class TestGate:
    def test_identical_reports_pass(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report())
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_small_slowdown_tolerated(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=0.80))
        assert proc.returncode == 0, proc.stderr

    def test_large_regression_fails(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=0.60))
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "FAIL" in proc.stderr

    def test_speedup_passes(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=2.0))
        assert proc.returncode == 0

    def test_threshold_is_configurable(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=0.80),
                        "--max-drop", "0.10")
        assert proc.returncode == 1

    def test_disjoint_reports_error(self, tmp_path):
        other = make_report()
        for run in other["runs"]:
            run["heuristic"] = "Y-IE"
        proc = run_gate(tmp_path, make_report(), other)
        assert proc.returncode == 2

    def test_missing_baseline_errors(self, tmp_path):
        current_path = tmp_path / "current.json"
        current_path.write_text(json.dumps(make_report()))
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--baseline", str(tmp_path / "nope.json"),
             "--current", str(current_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2

    def test_committed_baseline_passes_against_itself(self):
        baseline = REPO_ROOT / "benchmarks" / "results" / "BENCH_simulator.json"
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--current", str(baseline)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


def make_analysis_report(scale=1.0):
    runs = []
    for case in ("group_quantities_cold_8of20", "incremental_allocation_m10"):
        for variant in ("scalar", "batch"):
            runs.append(
                {
                    "case": case,
                    "variant": variant,
                    "ops": 256,
                    "wall_seconds": 0.01,
                    "ops_per_second": scale * (50_000 if variant == "batch" else 20_000),
                }
            )
    return {"benchmark": "analysis_throughput", "python": "3.11", "runs": runs}


class TestMultiBenchmarkGate:
    def run_pairs(self, tmp_path, pairs, *extra):
        arguments = [sys.executable, str(SCRIPT)]
        for index, (baseline, current) in enumerate(pairs):
            baseline_path = tmp_path / f"baseline{index}.json"
            current_path = tmp_path / f"current{index}.json"
            baseline_path.write_text(json.dumps(baseline))
            current_path.write_text(json.dumps(current))
            arguments += ["--pair", str(baseline_path), str(current_path)]
        return subprocess.run(
            arguments + list(extra), capture_output=True, text=True
        )

    def test_analysis_report_gated(self, tmp_path):
        proc = self.run_pairs(
            tmp_path, [(make_analysis_report(), make_analysis_report(scale=0.5))]
        )
        assert proc.returncode == 1
        assert "ops_per_second" in proc.stdout
        assert "REGRESSION" in proc.stdout

    def test_two_healthy_pairs_pass(self, tmp_path):
        proc = self.run_pairs(
            tmp_path,
            [
                (make_report(), make_report(scale=1.1)),
                (make_analysis_report(), make_analysis_report(scale=0.9)),
            ],
        )
        assert proc.returncode == 0, proc.stderr
        assert "simulator_throughput" in proc.stdout
        assert "analysis_throughput" in proc.stdout

    def test_regression_in_second_pair_fails(self, tmp_path):
        proc = self.run_pairs(
            tmp_path,
            [
                (make_report(), make_report()),
                (make_analysis_report(), make_analysis_report(scale=0.5)),
            ],
        )
        assert proc.returncode == 1

    def test_mismatched_report_kinds_error(self, tmp_path):
        proc = self.run_pairs(tmp_path, [(make_report(), make_analysis_report())])
        assert proc.returncode == 2
        assert "cannot compare" in proc.stderr

    def test_unknown_report_kind_errors(self, tmp_path):
        bogus = {"benchmark": "mystery", "runs": []}
        proc = self.run_pairs(tmp_path, [(bogus, bogus)])
        assert proc.returncode == 2

    def test_summary_markdown_written(self, tmp_path):
        summary = tmp_path / "summary.md"
        proc = self.run_pairs(
            tmp_path,
            [
                (make_report(), make_report(scale=0.5)),
                (make_analysis_report(), make_analysis_report()),
            ],
            "--summary", str(summary),
        )
        assert proc.returncode == 1  # regression still fails the gate
        text = summary.read_text()
        assert "## Benchmark regression gate" in text
        assert "### simulator_throughput (slots_per_second)" in text
        assert "### analysis_throughput (ops_per_second)" in text
        assert ":warning:" in text  # regressed rows are flagged
        assert "| RANDOM block |" in text

    def test_committed_analysis_baseline_passes_against_itself(self):
        baseline = REPO_ROOT / "benchmarks" / "results" / "BENCH_analysis.json"
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--pair", str(baseline), str(baseline)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_committed_analysis_baseline_records_2x_speedup(self):
        """Acceptance pin: the committed baseline documents >= 2x batch speedup
        on the 8-worker group-quantities frontier bench."""
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "results" / "BENCH_analysis.json").read_text()
        )
        speedups = baseline["speedup_batch_over_scalar"]
        assert speedups["group_quantities_cold_8of20"] >= 2.0


def make_fingerprint(**overrides):
    fingerprint = {
        "cpu_model": "Test CPU @ 2.0GHz",
        "cpu_count": 4,
        "platform": "x86_64",
        "python": "3.11.0",
        "numpy": "2.0.0",
        "numba": None,
        "kernel_backend": "numpy",
    }
    fingerprint.update(overrides)
    return fingerprint


class TestFingerprintWarnings:
    def test_mismatch_warns_but_does_not_fail(self, tmp_path):
        baseline = make_report()
        baseline["machine"] = make_fingerprint()
        current = make_report()
        current["machine"] = make_fingerprint(
            cpu_model="Other CPU", numba="0.60.0", kernel_backend="numba"
        )
        proc = run_gate(tmp_path, baseline, current)
        assert proc.returncode == 0, proc.stderr
        assert "WARNING" in proc.stdout
        assert "fingerprint mismatch" in proc.stdout
        assert "cpu_model" in proc.stdout
        assert "kernel_backend" in proc.stdout

    def test_matching_fingerprints_stay_silent(self, tmp_path):
        baseline = make_report()
        baseline["machine"] = make_fingerprint()
        current = make_report()
        current["machine"] = make_fingerprint()
        proc = run_gate(tmp_path, baseline, current)
        assert proc.returncode == 0
        assert "WARNING" not in proc.stdout

    def test_reports_without_fingerprint_stay_silent(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report())
        assert proc.returncode == 0
        assert "WARNING" not in proc.stdout

    def test_mismatch_does_not_mask_a_regression(self, tmp_path):
        baseline = make_report()
        baseline["machine"] = make_fingerprint()
        current = make_report(scale=0.5)
        current["machine"] = make_fingerprint(cpu_count=96)
        proc = run_gate(tmp_path, baseline, current)
        assert proc.returncode == 1
        assert "WARNING" in proc.stdout
        assert "FAIL" in proc.stderr


class TestCommittedSimulatorBaseline:
    def test_rows_fingerprint_and_aggregate_formula(self):
        """Acceptance pins: kernel + multiheuristic rows are tracked, the
        legacy mode is not, and the report carries a machine fingerprint."""
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "results" / "BENCH_simulator.json").read_text()
        )
        modes = {run["mode"] for run in baseline["runs"]}
        assert {"perslot", "block", "kernel", "multiheuristic"} <= modes
        assert "legacy" not in modes  # opt-in via --include-legacy, not gated
        machine = baseline["machine"]
        for field in ("cpu_model", "cpu_count", "python", "numpy", "numba",
                      "kernel_backend"):
            assert field in machine, field
        cell = next(run for run in baseline["runs"] if run["mode"] == "multiheuristic")
        assert cell["throughput_formula"] == "len(heuristics) * slots / wall_seconds"
        assert len(cell["heuristics"]) >= 8
        expected = len(cell["heuristics"]) * cell["slots"] / cell["wall_seconds"]
        assert abs(cell["slots_per_second"] - expected) < 1.0
        # The one-pass cell must beat the per-heuristic block sweep.
        for speedup in baseline["speedup_multiheuristic_over_block"].values():
            assert speedup > 1.0


class TestCompareReports:
    def test_compare_function_importable(self):
        sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
        try:
            from check_regression import compare_reports

            failures, lines = compare_reports(make_report(), make_report(scale=0.5))
            assert len(failures) == 4
            assert any("REGRESSION" in line for line in lines)
        finally:
            sys.path.pop(0)


def make_overhead_report(scale=1.0, overheads=(2.0, 4.0), mode="metrics_overhead"):
    """A simulator report carrying both throughput and overhead rows."""
    prefix = "collector" if mode == "metrics_overhead" else "tracer"
    report = make_report(scale=scale)
    for heuristic, overhead in zip(("RANDOM", "IE"), overheads):
        report["runs"].append(
            {
                "mode": mode,
                "heuristic": heuristic,
                "workers": 20,
                "slots": 100_000,
                f"{prefix}_off_slots_per_second": 40_000.0,
                f"{prefix}_on_slots_per_second": 40_000.0 / (1 + overhead / 100.0),
                "overhead_percent": overhead,
            }
        )
    return report


class TestOverheadGate:
    def test_identical_overheads_pass(self, tmp_path):
        proc = run_gate(tmp_path, make_overhead_report(), make_overhead_report())
        assert proc.returncode == 0, proc.stderr
        assert "+0.00pp" in proc.stdout

    def test_overhead_rows_do_not_feed_throughput_gate(self, tmp_path):
        """overhead_percent rows are compared as shifts, never as slowdowns —
        a tiny on-throughput must not trip the ratio check."""
        current = make_overhead_report()
        for run in current["runs"]:
            if run["mode"] == "metrics_overhead":
                run["collector_on_slots_per_second"] = 1.0
        proc = run_gate(tmp_path, make_overhead_report(), current)
        assert proc.returncode == 0, proc.stderr

    def test_overhead_increase_beyond_limit_fails(self, tmp_path):
        proc = run_gate(
            tmp_path, make_overhead_report(), make_overhead_report(overheads=(32.0, 4.0))
        )
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "two-sided limit 25pp" in proc.stderr

    def test_overhead_decrease_beyond_limit_fails(self, tmp_path):
        """A large *drop* is suspicious too: it usually means the collector
        silently stopped collecting, so the gate is two-sided."""
        proc = run_gate(
            tmp_path,
            make_overhead_report(overheads=(28.0, 4.0)),
            make_overhead_report(overheads=(1.0, 4.0)),
        )
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_small_shift_tolerated_both_ways(self, tmp_path):
        proc = run_gate(
            tmp_path,
            make_overhead_report(overheads=(2.0, 14.0)),
            make_overhead_report(overheads=(12.0, 4.0)),
        )
        assert proc.returncode == 0, proc.stderr

    def test_summary_includes_overhead_rows(self, tmp_path):
        summary = tmp_path / "summary.md"
        proc = run_gate(
            tmp_path, make_overhead_report(), make_overhead_report(),
            "--summary", str(summary),
        )
        assert proc.returncode == 0, proc.stderr
        text = summary.read_text()
        assert "metrics_overhead" in text
        assert "pp" in text

    def test_committed_baseline_overhead_under_budget(self):
        """Acceptance pin: the collector costs <5% on the 20-worker bench,
        measured and committed for both gated heuristics."""
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "results" / "BENCH_simulator.json").read_text()
        )
        rows = [run for run in baseline["runs"] if run["mode"] == "metrics_overhead"]
        assert {row["heuristic"] for row in rows} == {"RANDOM", "IE"}
        for row in rows:
            assert 0.0 <= row["overhead_percent"] < 5.0, row
            ratio = (
                row["collector_off_slots_per_second"]
                / row["collector_on_slots_per_second"]
            )
            assert abs(100.0 * (ratio - 1.0) - row["overhead_percent"]) < 0.01
        assert set(baseline["metrics_overhead_percent"]) == {"RANDOM", "IE"}


class TestTelemetryOverheadGate:
    """telemetry_overhead rows ride the same two-sided gate as metrics_overhead."""

    def test_telemetry_rows_partition_as_overhead(self, tmp_path):
        """The tracer rows never feed the throughput ratio check."""
        current = make_overhead_report(mode="telemetry_overhead")
        for run in current["runs"]:
            if run["mode"] == "telemetry_overhead":
                run["tracer_on_slots_per_second"] = 1.0
        proc = run_gate(tmp_path, make_overhead_report(mode="telemetry_overhead"), current)
        assert proc.returncode == 0, proc.stderr
        assert "+0.00pp" in proc.stdout

    def test_telemetry_shift_beyond_limit_fails_both_ways(self, tmp_path):
        for base, fresh in (((2.0, 4.0), (32.0, 4.0)), ((28.0, 4.0), (1.0, 4.0))):
            proc = run_gate(
                tmp_path,
                make_overhead_report(overheads=base, mode="telemetry_overhead"),
                make_overhead_report(overheads=fresh, mode="telemetry_overhead"),
            )
            assert proc.returncode == 1
            assert "REGRESSION" in proc.stdout

    def test_committed_baseline_tracer_under_budget(self):
        """Acceptance pin: tracing costs <5% on the 20-worker bench — and the
        off side is the exact pre-telemetry path, so a large negative
        overhead would be just as alarming."""
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "results" / "BENCH_simulator.json").read_text()
        )
        rows = [run for run in baseline["runs"] if run["mode"] == "telemetry_overhead"]
        assert {row["heuristic"] for row in rows} == {"RANDOM", "IE"}
        for row in rows:
            assert -5.0 < row["overhead_percent"] < 5.0, row
            ratio = (
                row["tracer_off_slots_per_second"] / row["tracer_on_slots_per_second"]
            )
            assert abs(100.0 * (ratio - 1.0) - row["overhead_percent"]) < 0.01
        assert set(baseline["telemetry_overhead_percent"]) == {"RANDOM", "IE"}
