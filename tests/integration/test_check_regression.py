"""Tests for the CI benchmark-regression gate (benchmarks/check_regression.py)."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def make_report(scale=1.0):
    runs = []
    for heuristic in ("RANDOM", "IE"):
        for mode in ("legacy", "block"):
            runs.append(
                {
                    "mode": mode,
                    "heuristic": heuristic,
                    "workers": 20,
                    "slots": 100_000,
                    "wall_seconds": 1.0,
                    "slots_per_second": scale * (40_000 if mode == "block" else 15_000),
                }
            )
    return {"benchmark": "simulator_throughput", "python": "3.11", "runs": runs}


def run_gate(tmp_path, baseline, current, *extra):
    baseline_path = tmp_path / "baseline.json"
    current_path = tmp_path / "current.json"
    baseline_path.write_text(json.dumps(baseline))
    current_path.write_text(json.dumps(current))
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--baseline", str(baseline_path),
         "--current", str(current_path), *extra],
        capture_output=True,
        text=True,
    )


class TestGate:
    def test_identical_reports_pass(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report())
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_small_slowdown_tolerated(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=0.80))
        assert proc.returncode == 0, proc.stderr

    def test_large_regression_fails(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=0.60))
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "FAIL" in proc.stderr

    def test_speedup_passes(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=2.0))
        assert proc.returncode == 0

    def test_threshold_is_configurable(self, tmp_path):
        proc = run_gate(tmp_path, make_report(), make_report(scale=0.80),
                        "--max-drop", "0.10")
        assert proc.returncode == 1

    def test_disjoint_reports_error(self, tmp_path):
        other = make_report()
        for run in other["runs"]:
            run["heuristic"] = "Y-IE"
        proc = run_gate(tmp_path, make_report(), other)
        assert proc.returncode == 2

    def test_missing_baseline_errors(self, tmp_path):
        current_path = tmp_path / "current.json"
        current_path.write_text(json.dumps(make_report()))
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--baseline", str(tmp_path / "nope.json"),
             "--current", str(current_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2

    def test_committed_baseline_passes_against_itself(self):
        baseline = REPO_ROOT / "benchmarks" / "results" / "BENCH_simulator.json"
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--current", str(baseline)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


class TestCompareReports:
    def test_compare_function_importable(self):
        sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
        try:
            from check_regression import compare_reports

            failures, lines = compare_reports(make_report(), make_report(scale=0.5))
            assert len(failures) == 4
            assert any("REGRESSION" in line for line in lines)
        finally:
            sys.path.pop(0)
