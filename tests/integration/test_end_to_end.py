"""End-to-end integration tests through the public API."""

import pytest

from repro import (
    ALL_HEURISTICS,
    AnalysisContext,
    Application,
    CampaignScale,
    ExpectationMode,
    PlatformSpec,
    create_scheduler,
    paper_platform,
    run_campaign,
    simulate,
    summarize_results,
)
from repro.experiments.figures import figure2_series

pytestmark = pytest.mark.slow


class TestSingleRunsThroughPublicAPI:
    def test_every_heuristic_completes_an_easy_instance(self):
        platform = paper_platform(
            PlatformSpec(num_processors=10, ncom=5, wmin=1), num_tasks=5, seed=5
        )
        application = Application(tasks_per_iteration=5, iterations=2)
        analysis = AnalysisContext(platform)
        makespans = {}
        for name in ALL_HEURISTICS:
            result = simulate(
                platform, application, create_scheduler(name), seed=99,
                max_slots=30_000, analysis=analysis,
            )
            assert result.success, f"{name} failed on an easy instance"
            makespans[name] = result.makespan
        # The informed heuristics should generally beat RANDOM.
        informed_best = min(v for k, v in makespans.items() if k != "RANDOM")
        assert informed_best <= makespans["RANDOM"]

    def test_renewal_estimator_also_works_end_to_end(self):
        platform = paper_platform(
            PlatformSpec(num_processors=8, ncom=4, wmin=1), num_tasks=4, seed=2
        )
        application = Application(tasks_per_iteration=4, iterations=2)
        analysis = AnalysisContext(platform, mode=ExpectationMode.RENEWAL)
        result = simulate(
            platform, application, create_scheduler("Y-IE"), seed=3,
            max_slots=30_000, analysis=analysis,
        )
        assert result.success


class TestMiniCampaign:
    def test_smoke_campaign_and_metrics(self):
        scale = CampaignScale.smoke()
        campaign = run_campaign(
            3, heuristics=("IE", "Y-IE", "RANDOM"), scale=scale, label="integration"
        )
        summaries = summarize_results(campaign.results)
        names = [summary.heuristic for summary in summaries]
        assert set(names) == {"IE", "Y-IE", "RANDOM"}
        reference = [s for s in summaries if s.heuristic == "IE"][0]
        assert reference.pct_diff == pytest.approx(0.0)
        series = figure2_series(campaign.results)
        assert "Y-IE" in series

    def test_campaign_is_reproducible(self):
        scale = CampaignScale.smoke()
        a = run_campaign(3, heuristics=("IE",), scale=scale, label="repro-check")
        b = run_campaign(3, heuristics=("IE",), scale=scale, label="repro-check")
        assert [r.makespan for r in a.results] == [r.makespan for r in b.results]
