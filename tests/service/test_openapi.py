"""The OpenAPI contract: generated document ≡ committed docs/openapi.json."""

from __future__ import annotations

import json
from pathlib import Path

from repro.service.openapi import (
    SCHEMA_CLASSES,
    main,
    openapi_document,
    openapi_json_text,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED = REPO_ROOT / "docs" / "openapi.json"


def test_committed_schema_matches_live_app():
    assert COMMITTED.exists(), "docs/openapi.json must be committed"
    assert COMMITTED.read_text() == openapi_json_text(), (
        "docs/openapi.json is stale; regenerate with "
        "python -m repro.service.openapi --output docs/openapi.json"
    )


def test_check_mode_detects_drift(tmp_path, capsys):
    good = tmp_path / "openapi.json"
    good.write_text(openapi_json_text())
    assert main(["--check", str(good)]) == 0
    bad = tmp_path / "stale.json"
    bad.write_text("{}\n")
    assert main(["--check", str(bad)]) == 1


def test_output_mode_writes_canonical_text(tmp_path):
    target = tmp_path / "openapi.json"
    assert main(["--output", str(target)]) == 0
    assert target.read_text() == openapi_json_text()


def test_document_structure():
    document = openapi_document()
    assert document["openapi"].startswith("3.")
    assert document["info"]["title"] == "repro campaign service"
    expected_paths = {
        "/",
        "/healthz",
        "/metrics",
        "/openapi.json",
        "/campaigns",
        "/campaigns/{campaign_id}",
        "/campaigns/{campaign_id}/cells",
        "/campaigns/{campaign_id}/report",
        "/campaigns/{campaign_id}/events",
    }
    assert set(document["paths"]) == expected_paths
    # Every schema dataclass has a component entry whose properties mirror
    # the dataclass fields.
    import dataclasses

    for cls in SCHEMA_CLASSES:
        component = document["components"]["schemas"][cls.__name__]
        assert set(component["properties"]) == {
            f.name for f in dataclasses.fields(cls)
        }


def test_document_is_deterministic():
    assert openapi_json_text() == openapi_json_text()
    # sort_keys + indent: the committed file is byte-stable across runs.
    parsed = json.loads(openapi_json_text())
    assert json.dumps(parsed, indent=2, sort_keys=True) + "\n" == openapi_json_text()


def test_every_response_ref_resolves():
    document = openapi_document()
    component_names = set(document["components"]["schemas"])

    def walk(node):
        if isinstance(node, dict):
            reference = node.get("$ref")
            if reference:
                name = reference.rsplit("/", 1)[-1]
                assert name in component_names, f"dangling $ref {reference}"
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(document)
