"""JobQueue and WorkerPool unit tests (no HTTP, no subprocesses except noted)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.spec import CampaignSpec
from repro.service.jobs import JOB_FIELDS, JobQueue, WorkerPool

from tests.service.conftest import tiny_spec_dict


def make_spec(name: str = "jobs-test") -> CampaignSpec:
    return CampaignSpec.from_dict(tiny_spec_dict(name))


def test_submit_creates_job_with_pinned_fields(tmp_path):
    queue = JobQueue(tmp_path)
    spec = make_spec()
    job, deduplicated = queue.submit(spec)
    assert not deduplicated
    assert job["id"] == spec.spec_hash()
    assert job["status"] == "queued"
    assert job["total_cells"] == spec.num_cells()
    assert sorted(job) == sorted(JOB_FIELDS)
    # The document on disk is the same one.
    on_disk = json.loads(queue.job_path(job["id"]).read_text())
    assert on_disk == job


def test_submit_is_idempotent_on_spec_hash(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec(), options={"n_jobs": 1})
    again, deduplicated = queue.submit(make_spec(), options={"n_jobs": 4})
    assert deduplicated
    assert again["id"] == job["id"]
    # First submitter's options win; the duplicate changed nothing on disk.
    assert again["options"] == {"n_jobs": 1}


def test_concurrent_submissions_create_exactly_one_job(tmp_path):
    queue = JobQueue(tmp_path)
    spec = make_spec()
    outcomes = []
    barrier = threading.Barrier(8)

    def submit():
        barrier.wait()
        outcomes.append(queue.submit(spec))

    threads = [threading.Thread(target=submit) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(outcomes) == 8
    created = [job for job, deduplicated in outcomes if not deduplicated]
    assert len(created) == 1, "exactly one submission must create the job"
    assert len({job["id"] for job, _ in outcomes}) == 1
    assert len(list(queue.jobs_dir.glob("*.json"))) == 1


def test_update_merges_atomically(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec())
    updated = queue.update(job["id"], status="running", pid=1234)
    assert updated["status"] == "running"
    assert queue.job(job["id"])["pid"] == 1234
    with pytest.raises(ExperimentError, match="unknown job"):
        queue.update("nope", status="failed")


def test_counts_and_listing_order(tmp_path):
    queue = JobQueue(tmp_path)
    first, _ = queue.submit(make_spec("a"))
    second, _ = queue.submit(make_spec("b"))
    queue.update(second["id"], status="completed")
    counts = queue.counts()
    assert counts == {"queued": 1, "running": 0, "completed": 1, "failed": 0}
    listed = queue.jobs()
    assert [job["id"] for job in listed] == [first["id"], second["id"]]


def test_recover_requeues_jobs_with_dead_pids(tmp_path):
    queue = JobQueue(tmp_path)
    dead, _ = queue.submit(make_spec("dead"))
    alive, _ = queue.submit(make_spec("alive"))
    import os

    queue.update(dead["id"], status="running", pid=2 ** 30)  # no such pid
    queue.update(alive["id"], status="running", pid=os.getpid())
    requeued = queue.recover()
    assert requeued == [dead["id"]]
    assert queue.job(dead["id"])["status"] == "queued"
    assert queue.job(alive["id"])["status"] == "running"


def test_pool_requeues_abnormal_death_then_fails_at_max_attempts(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec())
    pool = WorkerPool(queue, workers=1, max_attempts=2)

    class FakeProc:
        returncode = -9

        def poll(self):
            return self.returncode

    # First abnormal death: re-queued with attempts=1.
    queue.update(job["id"], status="running")
    pool._procs[job["id"]] = FakeProc()
    pool._reap()
    document = queue.job(job["id"])
    assert document["status"] == "queued"
    assert document["attempts"] == 1
    # Second abnormal death reaches max_attempts: failed.
    queue.update(job["id"], status="running")
    pool._procs[job["id"]] = FakeProc()
    pool._reap()
    document = queue.job(job["id"])
    assert document["status"] == "failed"
    assert "worker died" in document["error"]


def test_pool_treats_clean_exit_with_queued_status_as_yield(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(make_spec())

    class FakeProc:
        returncode = 0

        def poll(self):
            return self.returncode

    pool = WorkerPool(queue, workers=1, max_attempts=2)
    # Worker exited zero after putting the job back to queued (max_cells).
    pool._procs[job["id"]] = FakeProc()
    pool._reap()
    document = queue.job(job["id"])
    assert document["status"] == "queued"
    assert document["attempts"] == 0, "cooperative yield must not count as a failure"


def test_pool_validates_configuration(tmp_path):
    queue = JobQueue(tmp_path)
    with pytest.raises(ExperimentError):
        WorkerPool(queue, workers=0)
    with pytest.raises(ExperimentError):
        WorkerPool(queue, max_attempts=0)
