"""The observability surface: /metrics, SSE events, enriched /healthz."""

from __future__ import annotations

import io
import json

import pytest

from repro.service.app import create_wsgi_app, route_template
from repro.service.worker import run_job

from tests.service.conftest import tiny_spec_dict


def wsgi_raw(state, method, path, query=""):
    """Call the WSGI app and return (status, headers, response iterable)."""
    app = create_wsgi_app(state)
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": "0",
        "wsgi.input": io.BytesIO(b""),
    }
    result = app(environ, start_response)
    return captured["status"], captured["headers"], result


def drain(result):
    """Exhaust a WSGI result and close it if it supports close()."""
    text = b"".join(result).decode()
    closer = getattr(result, "close", None)
    if closer is not None:
        closer()
    return text


def parse_sse(text):
    """Split an SSE byte stream into (event, id, data) tuples plus comments."""
    events, comments = [], []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        if block.startswith(":"):
            comments.append(block)
            continue
        fields = {}
        for line in block.splitlines():
            key, _, value = line.partition(":")
            fields[key] = value.strip()
        if "event" in fields:
            events.append(
                (fields["event"], int(fields["id"]), json.loads(fields["data"]))
            )
    return events, comments


def submit(client, name="sse-test"):
    status, payload = client.post_json("/campaigns", {"spec": tiny_spec_dict(name)})
    assert status in (200, 201)
    return payload["id"]


# ----------------------------------------------------------------------
# /healthz enrichment
# ----------------------------------------------------------------------
class TestHealth:
    def test_reports_queue_depth(self, service_state, client):
        submit(client)
        status, payload = client.get_json("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["queue_depth"] == 1
        assert payload["stale_jobs"] == 0

    def test_degraded_on_stale_running_job(self, service_state, client):
        job_id = submit(client)
        # A job claiming to run under a pid that cannot exist -> stale.
        service_state.queue.update(job_id, status="running", pid=2**22 + 12345)
        status, payload = client.get_json("/healthz")
        assert status == 200
        assert payload["status"] == "degraded"
        assert payload["stale_jobs"] == 1
        assert service_state.queue.stale_jobs() == [job_id]


# ----------------------------------------------------------------------
# /metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_prometheus_exposition_format(self, service_state, client):
        submit(client)
        client.get_json("/healthz")
        status, headers, result = wsgi_raw(service_state, "GET", "/metrics")
        text = drain(result)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_job_queue_depth gauge" in text
        assert "repro_job_queue_depth 1" in text
        assert 'repro_jobs{status="queued"} 1' in text
        assert "# TYPE repro_http_requests_total counter" in text
        assert (
            'repro_http_requests_total{method="GET",route="/healthz",status="200"} 1'
            in text
        )
        assert "# TYPE repro_http_request_duration_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_http_request_duration_seconds_count" in text
        # The gauge block renders even before any stream opened.
        assert "repro_sse_streams_active 0" in text

    def test_rss_gauge_present_on_linux(self, service_state):
        _, _, result = wsgi_raw(service_state, "GET", "/metrics")
        text = drain(result)
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("process_resident_memory_bytes ")
        ]
        if lines:  # rss may be unavailable on exotic platforms
            assert float(lines[0].split()[1]) > 0

    def test_request_labels_use_route_templates(self, service_state, client):
        job_id = submit(client)
        client.get_json(f"/campaigns/{job_id}")
        _, _, result = wsgi_raw(service_state, "GET", "/metrics")
        text = drain(result)
        assert 'route="/campaigns/{id}"' in text
        assert job_id not in text  # raw ids never become label values


class TestRouteTemplate:
    @pytest.mark.parametrize(
        "path, expected",
        [
            ("/", "/"),
            ("/healthz", "/healthz"),
            ("/metrics", "/metrics"),
            ("/openapi.json", "/openapi.json"),
            ("/campaigns", "/campaigns"),
            ("/campaigns/abc123", "/campaigns/{id}"),
            ("/campaigns/abc123/cells", "/campaigns/{id}/cells"),
            ("/campaigns/abc123/report", "/campaigns/{id}/report"),
            ("/campaigns/abc123/events", "/campaigns/{id}/events"),
            ("/no/such/route", "<unmatched>"),
        ],
    )
    def test_template(self, path, expected):
        assert route_template(path) == expected


# ----------------------------------------------------------------------
# SSE events
# ----------------------------------------------------------------------
class TestEvents:
    def test_snapshot_for_queued_job(self, service_state, client):
        job_id = submit(client)
        status, headers, result = wsgi_raw(
            service_state, "GET", f"/campaigns/{job_id}/events",
            query="poll=0.05&limit=1",
        )
        text = drain(result)
        assert status == 200
        assert headers["Content-Type"].startswith("text/event-stream")
        assert "Content-Length" not in headers
        assert text.startswith("retry: 2000\n\n")
        events, _ = parse_sse(text)
        assert events[0][0] == "snapshot"
        assert events[0][2]["status"] == "queued"
        assert events[0][2]["completed_cells"] == 0
        assert events[0][2]["total_cells"] == 4

    def test_completed_job_streams_snapshot_then_end(self, service_state, client):
        job_id = submit(client)
        assert run_job(service_state.queue.job_path(job_id)) == 0
        status, _, result = wsgi_raw(
            service_state, "GET", f"/campaigns/{job_id}/events", query="poll=0.05"
        )
        text = drain(result)
        events, _ = parse_sse(text)
        assert [event[0] for event in events] == ["snapshot", "end"]
        assert events[-1][2]["status"] == "completed"
        assert events[-1][2]["completed_cells"] == 4
        # Event ids increment monotonically.
        assert [event[1] for event in events] == [0, 1]

    def test_progress_event_on_status_change(self, service_state, client):
        job_id = submit(client)
        stream = service_state._event_stream(
            job_id, poll=0.02, heartbeat=60.0, limit=0
        )
        chunks = [next(stream), next(stream)]  # retry preamble + snapshot
        assert "event: snapshot" in chunks[1]
        # Complete the job while the stream is polling.
        assert run_job(service_state.queue.job_path(job_id)) == 0
        rest = "".join(stream)
        events, _ = parse_sse(rest)
        kinds = [event[0] for event in events]
        assert kinds[-1] == "end"
        assert events[-1][2]["completed_cells"] == 4

    def test_heartbeats_while_idle(self, service_state, client):
        job_id = submit(client)
        stream = service_state._event_stream(
            job_id, poll=0.01, heartbeat=0.02, limit=0
        )
        chunks = [next(stream), next(stream)]
        # Collect a few more chunks; the job never progresses, so they must
        # all be heartbeat comments.
        for _ in range(2):
            chunks.append(next(stream))
        stream.close()
        assert chunks[-1] == ": heartbeat\n\n"

    def test_unknown_campaign_404(self, client):
        status, payload = client.get_json("/campaigns/nope/events")
        assert status == 404

    def test_invalid_query_params_rejected(self, service_state, client):
        job_id = submit(client)
        for query in ("poll=abc", "poll=0", "heartbeat=-1", "limit=-2"):
            status, _, result = wsgi_raw(
                service_state, "GET", f"/campaigns/{job_id}/events", query=query
            )
            drain(result)
            assert status == 422, query

    def test_gauge_tracks_stream_lifecycle_and_disconnect(self, service_state, client):
        job_id = submit(client)
        gauge = service_state._sse_streams
        stream = service_state._event_stream(job_id, poll=0.01, heartbeat=60.0, limit=0)
        next(stream)
        assert gauge.value() == 1
        # A client disconnect closes the generator mid-stream; the finally
        # block must still decrement the gauge.
        stream.close()
        assert gauge.value() == 0

    def test_wsgi_close_propagates_to_generator(self, service_state, client):
        job_id = submit(client)
        _, _, result = wsgi_raw(
            service_state, "GET", f"/campaigns/{job_id}/events",
            query="poll=0.05",
        )
        iterator = iter(result)
        next(iterator)
        assert service_state._sse_streams.value() == 1
        result.close()
        assert service_state._sse_streams.value() == 0
        # close() also records the request into the metrics.
        assert (
            service_state._requests_total.value(
                method="GET", route="/campaigns/{id}/events", status="200"
            )
            == 1
        )
        result.close()  # idempotent


# ----------------------------------------------------------------------
# FastAPI parity (skipped when the service extra is not installed)
# ----------------------------------------------------------------------
class TestFastAPIParity:
    @pytest.fixture
    def fastapi_client(self, service_state):
        pytest.importorskip("fastapi")
        from fastapi.testclient import TestClient

        from repro.service.fastapi_app import create_app

        with TestClient(create_app(service_state)) as test_client:
            yield test_client

    def test_metrics_endpoint(self, fastapi_client):
        response = fastapi_client.get("/metrics")
        assert response.status_code == 200
        assert "repro_job_queue_depth" in response.text

    def test_health_enrichment(self, fastapi_client):
        payload = fastapi_client.get("/healthz").json()
        assert {"status", "workers", "jobs", "queue_depth", "stale_jobs"} <= set(payload)

    def test_events_stream(self, service_state, fastapi_client):
        status, payload = (
            lambda response: (response.status_code, response.json())
        )(fastapi_client.post("/campaigns", json={"spec": tiny_spec_dict("fa-sse")}))
        assert status in (200, 201)
        with fastapi_client.stream(
            "GET", f"/campaigns/{payload['id']}/events", params={"limit": 1, "poll": 0.05}
        ) as response:
            assert response.status_code == 200
            assert response.headers["content-type"].startswith("text/event-stream")
            text = "".join(response.iter_text())
        events, _ = parse_sse(text)
        assert events[0][0] == "snapshot"
