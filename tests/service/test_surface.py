"""Pin the service's typed schema surface, api-surface style.

Adding or renaming a request/response field is an API change clients see;
this test makes it a deliberate, reviewable diff (and `docs/openapi.json`
must be regenerated alongside it — test_openapi.py enforces that half).
"""

from __future__ import annotations

import dataclasses

import repro.service as service
from repro.service import schemas
from repro.service.jobs import JOB_FIELDS, JOB_STATUSES

SERVICE_SURFACE = [
    "ServiceConfig",
    "ServiceState",
    "create_wsgi_app",
    "serve",
    "JOB_STATUSES",
    "JobQueue",
    "WorkerPool",
    "ServiceError",
    "CampaignSubmission",
    "CampaignAccepted",
    "CampaignStatus",
    "HeuristicProgress",
    "CampaignSummary",
    "CampaignList",
    "CellRecord",
    "CampaignCells",
    "ServiceInfo",
    "HealthResponse",
    "ErrorResponse",
]

SCHEMA_FIELDS = {
    "CampaignSubmission": [
        "spec", "builtin", "spec_toml", "sampler", "collect_metrics",
        "metrics_stride", "n_jobs", "max_cells",
    ],
    "CampaignAccepted": [
        "id", "name", "status", "deduplicated", "total_cells", "location", "report",
    ],
    "CampaignStatus": [
        "id", "name", "status", "attempts", "total_cells", "completed_cells",
        "remaining_cells", "by_heuristic", "error", "submitted_at",
        "started_at", "finished_at", "backend", "options",
    ],
    "HeuristicProgress": ["heuristic", "done", "total"],
    "CampaignSummary": [
        "id", "name", "status", "completed_cells", "total_cells", "submitted_at",
    ],
    "CampaignList": ["count", "campaigns"],
    "CellRecord": [
        "cell", "heuristic", "m", "ncom", "wmin", "num_processors",
        "scenario_index", "trial_index", "success", "makespan",
        "completed_iterations", "total_restarts",
        "total_configuration_changes", "wall_time_seconds", "has_metrics",
    ],
    "CampaignCells": [
        "id", "total_cells", "completed_cells", "offset", "limit", "count", "cells",
    ],
    "ServiceInfo": ["name", "version", "description", "endpoints"],
    "HealthResponse": ["status", "workers", "jobs", "queue_depth", "stale_jobs"],
    "ErrorResponse": ["error"],
}


def test_service_package_surface():
    assert sorted(service.__all__) == sorted(SERVICE_SURFACE)
    for name in SERVICE_SURFACE:
        assert hasattr(service, name), f"repro.service.{name} missing"


def test_schema_fields_pinned():
    for class_name, expected in SCHEMA_FIELDS.items():
        cls = getattr(schemas, class_name)
        actual = [f.name for f in dataclasses.fields(cls)]
        assert actual == expected, (
            f"{class_name} fields changed: {actual} != {expected}; this is a "
            "client-visible API change — update this test AND regenerate "
            "docs/openapi.json (python -m repro.service.openapi --output "
            "docs/openapi.json)"
        )


def test_schemas_are_frozen_with_docstrings():
    for class_name in SCHEMA_FIELDS:
        cls = getattr(schemas, class_name)
        assert cls.__dataclass_params__.frozen, f"{class_name} must be frozen"
        assert cls.__doc__ and not cls.__doc__.startswith(class_name + "("), (
            f"{class_name} needs a real docstring"
        )


def test_job_document_fields_pinned():
    assert JOB_FIELDS == (
        "id", "format_version", "name", "spec", "spec_hash", "base_dir",
        "backend", "status", "attempts", "pid", "submitted_at", "started_at",
        "finished_at", "error", "options", "total_cells",
    )
    assert JOB_STATUSES == ("queued", "running", "completed", "failed")
