"""Shared fixtures and helpers for the service test suite."""

from __future__ import annotations

import io
import json

import pytest

from repro.service.app import ServiceConfig, ServiceState, create_wsgi_app


def tiny_spec_dict(name: str = "service-test") -> dict:
    """A 4-cell campaign spec that runs in well under a second."""
    return {
        "name": name,
        "m_values": [4],
        "ncom_values": [5],
        "wmin_values": [1],
        "num_processors_values": [8],
        "heuristics": ["IE", "RANDOM"],
        "scenarios_per_cell": 1,
        "trials_per_scenario": 2,
        "iterations": 3,
        "makespan_cap": 30000,
    }


class WsgiClient:
    """Call a WSGI app in-process, no sockets (the fast path for handler tests)."""

    def __init__(self, app):
        self.app = app

    def request(self, method: str, path: str, body=None, query: str = ""):
        raw = b""
        if body is not None:
            raw = body if isinstance(body, bytes) else json.dumps(body).encode()
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "CONTENT_LENGTH": str(len(raw)),
            "wsgi.input": io.BytesIO(raw),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])
            captured["headers"] = dict(headers)

        chunks = self.app(environ, start_response)
        payload = b"".join(chunks)
        return captured["status"], captured["headers"], payload

    def get_json(self, path: str, query: str = ""):
        status, _, payload = self.request("GET", path, query=query)
        return status, json.loads(payload)

    def post_json(self, path: str, body):
        status, _, payload = self.request("POST", path, body=body)
        return status, json.loads(payload)


@pytest.fixture
def service_state(tmp_path):
    """A ServiceState over a temp root; the worker pool is NOT started."""
    state = ServiceState(ServiceConfig(root=tmp_path / "root", workers=1))
    yield state
    state.stop()


@pytest.fixture
def client(service_state):
    """An in-process WSGI client over ``service_state``."""
    return WsgiClient(create_wsgi_app(service_state))
