"""End-to-end service tests: live HTTP server, real worker subprocesses.

These are the acceptance tests of ISSUE 9:

* two concurrent identical ``POST /campaigns`` submissions share one run —
  a single store manifest, and both clients see the completed cells;
* killing the worker mid-campaign and restarting the service resumes to
  byte-identical results (modulo the store's volatile wall-clock field)
  versus an uninterrupted run of the same spec.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import run_campaign_spec
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore
from repro.service.app import ServiceConfig, ServiceState, make_server
from repro.service.jobs import JobQueue, WorkerPool, spawn_worker

from tests.service.conftest import tiny_spec_dict

pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def http(method: str, url: str, body=None):
    """One HTTP exchange; returns (status, parsed-or-raw body)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
    try:
        return status, json.loads(raw)
    except ValueError:
        return status, raw


def stable_records(store_dir) -> str:
    """The store's records as canonical JSON with volatile fields zeroed."""
    store = ResultStore.open(store_dir)
    try:
        records = store.records()
    finally:
        store.close()
    cleaned = []
    for record in records:
        record = dict(record)
        record["wall_time_seconds"] = 0.0
        record.pop("metrics", None)
        cleaned.append(record)
    return json.dumps(cleaned, sort_keys=True)


def wait_for(predicate, *, timeout: float, interval: float = 0.05, message: str = ""):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout}s: {message}")


@pytest.fixture
def live_service(tmp_path):
    """A started service (pool + threading WSGI server) on an ephemeral port."""
    state = ServiceState(
        ServiceConfig(root=tmp_path / "root", workers=2, poll_interval=0.05)
    )
    state.start()
    server = make_server(state, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield state, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        state.stop()


# ----------------------------------------------------------------------
# Concurrent identical submissions share one run
# ----------------------------------------------------------------------
def test_concurrent_identical_submissions_share_one_run(live_service):
    state, base = live_service
    payload = {"spec": tiny_spec_dict("e2e-shared")}
    barrier = threading.Barrier(2)
    outcomes = []

    def submit():
        barrier.wait()
        outcomes.append(http("POST", f"{base}/campaigns", payload))

    threads = [threading.Thread(target=submit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(outcomes) == 2
    ids = {body["id"] for _, body in outcomes}
    assert len(ids) == 1, "identical specs must share one job id"
    job_id = ids.pop()
    assert sorted(status for status, _ in outcomes) == [200, 201]
    assert [body["deduplicated"] for _, body in outcomes].count(True) == 1

    # Exactly one store exists for the shared run.
    stores = [path for path in (state.queue.root / "stores").iterdir() if path.is_dir()]
    assert [path.name for path in stores] in ([], [job_id])  # worker may not have started yet

    wait_for(
        lambda: http("GET", f"{base}/campaigns/{job_id}")[1]["status"] == "completed",
        timeout=60,
        message="shared campaign never completed",
    )

    # Single manifest on disk, and it is the job's.
    stores = [path for path in (state.queue.root / "stores").iterdir() if path.is_dir()]
    assert [path.name for path in stores] == [job_id]
    assert (stores[0] / "manifest.json").exists()

    # Both clients (any client) see all completed cells and the HTML report.
    for _ in range(2):
        status, cells = http("GET", f"{base}/campaigns/{job_id}/cells")
        assert status == 200
        assert cells["completed_cells"] == cells["total_cells"] == 4
        assert len(cells["cells"]) == 4
    status, html = http("GET", f"{base}/campaigns/{job_id}/report")
    assert status == 200
    assert html.startswith(b"<!DOCTYPE html>")


# ----------------------------------------------------------------------
# Worker kill mid-campaign, then resume: byte-identical results
# ----------------------------------------------------------------------
def kill_test_spec() -> CampaignSpec:
    """~24 cells at ~150 ms each: several seconds of work to kill into."""
    return CampaignSpec.from_dict({
        "name": "e2e-kill",
        "m_values": [10],
        "ncom_values": [10],
        "wmin_values": [1],
        "num_processors_values": [20],
        "heuristics": ["IE", "RANDOM"],
        "scenarios_per_cell": 6,
        "trials_per_scenario": 2,
        "iterations": 30,
        "makespan_cap": 30000,
    })


def test_worker_kill_then_restart_resumes_byte_identical(tmp_path):
    spec = kill_test_spec()
    queue = JobQueue(tmp_path / "root")
    job, _ = queue.submit(spec)
    job_path = queue.job_path(job["id"])
    results_file = queue.store_dir(job["id"]) / "results.jsonl"

    # First worker: let it land at least one durable cell, then SIGKILL it.
    proc = spawn_worker(job_path, queue.log_path(job["id"]))
    try:
        wait_for(
            lambda: results_file.exists() and results_file.stat().st_size > 0,
            timeout=60,
            interval=0.02,
            message="worker produced no cells before the kill",
        )
    finally:
        proc.kill()
    proc.wait(timeout=10)

    document = queue.job(job["id"])
    assert document["status"] == "running", "killed worker cannot reach a terminal status"
    partial = ResultStore.open(queue.store_dir(job["id"]))
    completed_at_kill = len(partial.records())
    partial.close()
    assert 0 < completed_at_kill < spec.num_cells(), (
        f"the kill must interrupt mid-campaign (completed {completed_at_kill}"
        f"/{spec.num_cells()})"
    )

    # "Service restart": a fresh queue recovers the orphaned job (dead pid).
    restarted = JobQueue(tmp_path / "root")
    assert restarted.recover() == [job["id"]]
    assert restarted.job(job["id"])["status"] == "queued"

    # Second worker resumes from the store and finishes the campaign.
    proc = spawn_worker(job_path, restarted.log_path(job["id"]))
    assert proc.wait(timeout=300) == 0
    assert restarted.job(job["id"])["status"] == "completed"

    # Reference: an uninterrupted in-process run of the same spec.
    reference_store = ResultStore.create(tmp_path / "reference", spec)
    try:
        run_campaign_spec(spec, store=reference_store)
    finally:
        reference_store.close()

    assert stable_records(restarted.store_dir(job["id"])) == stable_records(
        tmp_path / "reference"
    ), "resumed run must reproduce the uninterrupted results byte-identically"


# ----------------------------------------------------------------------
# Cooperative yield: the pool drives an interrupted job to completion
# ----------------------------------------------------------------------
def test_pool_completes_job_across_max_cells_yields(tmp_path):
    spec = CampaignSpec.from_dict(tiny_spec_dict("e2e-yield"))
    queue = JobQueue(tmp_path / "root")
    # Each dispatch runs exactly one new cell, then yields: 4 worker runs.
    job, _ = queue.submit(spec, options={"max_cells": 1})
    pool = WorkerPool(queue, workers=1, poll_interval=0.05)
    pool.start()
    try:
        wait_for(
            lambda: queue.job(job["id"])["status"] in ("completed", "failed"),
            timeout=120,
            message="interrupted job never completed",
        )
    finally:
        pool.stop()
    document = queue.job(job["id"])
    assert document["status"] == "completed"
    assert document["attempts"] == 0, "yields must not count as failures"

    reference_store = ResultStore.create(tmp_path / "reference", spec)
    try:
        run_campaign_spec(spec, store=reference_store)
    finally:
        reference_store.close()
    assert stable_records(queue.store_dir(job["id"])) == stable_records(
        tmp_path / "reference"
    )
