"""Handler-level tests of the HTTP surface (in-process WSGI, no sockets)."""

from __future__ import annotations

import json

from repro.service.worker import run_job

from tests.service.conftest import tiny_spec_dict


def test_info_lists_every_endpoint(client):
    status, payload = client.get_json("/")
    assert status == 200
    assert payload["name"] == "repro campaign service"
    assert "POST /campaigns" in payload["endpoints"]
    assert "GET /campaigns/{id}/report" in payload["endpoints"]


def test_health_reports_queue_counters(client):
    status, payload = client.get_json("/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["jobs"] == {"queued": 0, "running": 0, "completed": 0, "failed": 0}


def test_submit_inline_spec_queues_job(client):
    status, payload = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    assert status == 201
    assert payload["status"] == "queued"
    assert payload["deduplicated"] is False
    assert payload["total_cells"] == 4
    assert payload["location"] == f"/campaigns/{payload['id']}"


def test_submit_builtin_by_name(client):
    status, payload = client.post_json("/campaigns", {"builtin": "smoke"})
    assert status == 201
    assert payload["name"] == "smoke"


def test_submit_toml_text(client):
    toml = """
[campaign]
name = "toml-submission"
m = [4]
heuristics = ["IE"]
scenarios_per_cell = 1
trials = 1
iterations = 2

[grid]
ncom = [5]
wmin = [1]
num_processors = [8]
"""
    status, payload = client.post_json("/campaigns", {"spec_toml": toml})
    assert status == 201
    assert payload["name"] == "toml-submission"
    assert payload["total_cells"] == 1


def test_duplicate_submission_returns_200_with_same_id(client):
    _, first = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    status, second = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    assert status == 200
    assert second["deduplicated"] is True
    assert second["id"] == first["id"]


def test_malformed_json_body_is_400(client):
    status, _, payload = client.request("POST", "/campaigns", body=b"{not json")
    assert status == 400
    assert "not valid JSON" in json.loads(payload)["error"]


def test_unknown_heuristic_is_422_with_registry_message(client):
    spec = tiny_spec_dict()
    spec["heuristics"] = ["NOPE"]
    status, payload = client.post_json("/campaigns", {"spec": spec})
    assert status == 422
    assert payload["error"] == "unknown heuristics in spec: ['NOPE']"


def test_unknown_builtin_is_422(client):
    status, payload = client.post_json("/campaigns", {"builtin": "nope"})
    assert status == 422
    assert "unknown built-in spec 'nope'" in payload["error"]


def test_invalid_toml_is_422(client):
    status, payload = client.post_json("/campaigns", {"spec_toml": "= broken"})
    assert status == 422
    assert "spec_toml is not valid TOML" in payload["error"]


def test_multiple_spec_sources_is_422(client):
    status, payload = client.post_json(
        "/campaigns", {"builtin": "smoke", "spec": tiny_spec_dict()}
    )
    assert status == 422
    assert "exactly one of" in payload["error"]


def test_unknown_submission_field_is_422(client):
    status, payload = client.post_json("/campaigns", {"builtin": "smoke", "bogus": 1})
    assert status == 422
    assert "unknown submission fields ['bogus']" in payload["error"]


def test_unknown_spec_key_is_422(client):
    spec = tiny_spec_dict()
    spec["bogus_key"] = True
    status, payload = client.post_json("/campaigns", {"spec": spec})
    assert status == 422
    assert "invalid campaign spec" in payload["error"]


def test_unknown_campaign_is_404(client):
    for path in ("/campaigns/nope", "/campaigns/nope/cells", "/campaigns/nope/report"):
        status, payload = client.get_json(path)
        assert status == 404
        assert "unknown campaign" in payload["error"]


def test_unknown_route_is_404_and_wrong_method_is_405(client):
    status, _ = client.get_json("/bogus")
    assert status == 404
    status, _, _ = client.request("POST", "/healthz")
    assert status == 405


def test_status_of_queued_job_shows_zero_progress(client):
    _, accepted = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    status, payload = client.get_json(accepted["location"])
    assert status == 200
    assert payload["status"] == "queued"
    assert payload["completed_cells"] == 0
    assert payload["remaining_cells"] == 4
    assert payload["by_heuristic"] == []


def test_report_before_any_cells_is_409(client):
    _, accepted = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    status, payload = client.get_json(accepted["report"])
    assert status == 409
    assert "no completed cells yet" in payload["error"]


def test_full_lifecycle_status_cells_report(service_state, client):
    _, accepted = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    # Run the job in-process (the pool path is covered by the e2e tests).
    assert run_job(service_state.queue.job_path(accepted["id"])) == 0

    status, payload = client.get_json(accepted["location"])
    assert status == 200
    assert payload["status"] == "completed"
    assert payload["completed_cells"] == payload["total_cells"] == 4
    assert {entry["heuristic"]: entry["done"] for entry in payload["by_heuristic"]} == {
        "IE": 2,
        "RANDOM": 2,
    }

    status, cells = client.get_json(accepted["location"] + "/cells")
    assert status == 200
    assert cells["count"] == 4
    assert [cell["cell"] for cell in cells["cells"]] == [0, 1, 2, 3]
    assert all(cell["success"] for cell in cells["cells"])

    # Pagination slices the same canonical ordering.
    status, page = client.get_json(accepted["location"] + "/cells", query="offset=1&limit=2")
    assert page["count"] == 2
    assert [cell["cell"] for cell in page["cells"]] == [1, 2]

    status, headers, body = client.request("GET", accepted["report"])
    assert status == 200
    assert headers["Content-Type"].startswith("text/html")
    assert body.startswith(b"<!DOCTYPE html>")

    status, listing = client.get_json("/campaigns")
    assert listing["count"] == 1
    assert listing["campaigns"][0]["status"] == "completed"


def test_spec_metrics_settings_survive_into_job_options(service_state, client):
    # collect_metrics/metrics_stride are volatile spec fields outside the
    # persisted snapshot; the submit handler must fold them into the job
    # options or they would be lost (regression test).
    spec = tiny_spec_dict("metrics-spec")
    spec["collect_metrics"] = True
    spec["metrics_stride"] = 32
    _, accepted = client.post_json("/campaigns", {"spec": spec})
    job = service_state.queue.job(accepted["id"])
    assert job["options"]["collect_metrics"] is True
    assert job["options"]["metrics_stride"] == 32
    # An explicit submission option still wins over the spec's setting.
    spec2 = tiny_spec_dict("metrics-override")
    spec2["collect_metrics"] = True
    _, accepted2 = client.post_json(
        "/campaigns", {"spec": spec2, "collect_metrics": False}
    )
    job2 = service_state.queue.job(accepted2["id"])
    assert job2["options"]["collect_metrics"] is False
    # The job runs and the stored cells carry series.
    assert run_job(service_state.queue.job_path(accepted["id"])) == 0
    _, cells = client.get_json(accepted["location"] + "/cells")
    assert all(cell["has_metrics"] for cell in cells["cells"])


def test_invalid_pagination_is_422(client):
    _, accepted = client.post_json("/campaigns", {"spec": tiny_spec_dict()})
    status, payload = client.get_json(accepted["location"] + "/cells", query="offset=-1")
    assert status == 422
    status, payload = client.get_json(accepted["location"] + "/cells", query="limit=xyz")
    assert status == 422
    assert "must be an integer" in payload["error"]
    status, payload = client.get_json(accepted["location"] + "/cells", query="limit=100000")
    assert status == 422


def test_openapi_endpoint_serves_committed_bytes(client):
    from repro.service.openapi import openapi_json_text

    status, headers, body = client.request("GET", "/openapi.json")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert body.decode("utf-8") == openapi_json_text()
