"""Tests for repro.utils.tables (text table formatting)."""

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(
            [["IE", 0, 0.0], ["Y-IE", 2, -11.82]], headers=["Heuristic", "#fails", "%diff"]
        )
        lines = text.splitlines()
        assert lines[0].startswith("Heuristic")
        assert "-----" in lines[1]
        assert "Y-IE" in lines[3]
        assert "-11.82" in lines[3]

    def test_empty(self):
        assert format_table([]) == ""

    def test_none_cells_render_empty(self):
        text = format_table([["a", None]])
        assert text.rstrip().endswith("a")

    def test_ragged_rows_are_padded(self):
        text = format_table([["a", 1, 2], ["b"]])
        assert len(text.splitlines()) == 2

    def test_float_format_applied(self):
        text = format_table([["x", 1.23456]], float_fmt=".3f")
        assert "1.235" in text

    def test_headers_only(self):
        text = format_table([], headers=["a", "b"])
        assert "a" in text and "b" in text

    def test_custom_alignment(self):
        text = format_table([["left", "right"]], align_right=[False, True])
        assert text.startswith("left")
