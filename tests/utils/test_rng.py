"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds, stable_hash_seed


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=5)
        b = as_generator(42).integers(0, 1_000_000, size=5)
        assert np.array_equal(a, b)

    def test_existing_generator_is_returned_unchanged(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_spawn_seeds_count(self):
        seeds = spawn_seeds(1, 5)
        assert len(seeds) == 5

    def test_spawn_seeds_are_independent_streams(self):
        gens = spawn_generators(1, 3)
        draws = [g.integers(0, 2**32, size=4).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_is_deterministic(self):
        a = [g.integers(0, 1000) for g in spawn_generators(9, 4)]
        b = [g.integers(0, 1000) for g in spawn_generators(9, 4)]
        assert a == b

    def test_spawn_rejects_generator_input(self):
        with pytest.raises(TypeError):
            spawn_seeds(np.random.default_rng(0), 2)

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawn_zero_count(self):
        assert spawn_seeds(0, 0) == []


class TestStableHashSeed:
    def test_deterministic(self):
        assert stable_hash_seed("a", 1, 2.5) == stable_hash_seed("a", 1, 2.5)

    def test_different_parts_differ(self):
        assert stable_hash_seed("a", 1) != stable_hash_seed("a", 2)

    def test_type_sensitivity(self):
        # The string "1" and the integer 1 must hash differently.
        assert stable_hash_seed("x", "1") != stable_hash_seed("x", 1)

    def test_range(self):
        value = stable_hash_seed("campaign", 5, 7)
        assert 0 <= value < 2**63

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stable_hash_seed()

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash_seed(object())
