"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability_matrix,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_rejects_non_positive_or_non_finite(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")


class TestCheckPositiveInt:
    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckFraction:
    def test_bounds_inclusive_by_default(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_strict_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", allow_zero=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", allow_one=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")


class TestCheckProbabilityMatrix:
    def test_accepts_valid(self):
        matrix = np.array([[0.5, 0.5], [0.2, 0.8]])
        out = check_probability_matrix(matrix, "m")
        assert out.dtype == float

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[0.5, 0.4], [0.2, 0.8]]), "m")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[-0.1, 1.1], [0.5, 0.5]]), "m")

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.ones((2, 3)) / 3, "m")

    def test_size_enforced(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.eye(2), "m", size=3)
