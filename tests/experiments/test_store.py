"""Tests for the persistent campaign result store (JSONL and sqlite)."""

import dataclasses
import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import InstanceResult
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore, merge_stores, store_status


def unit_spec(**overrides):
    defaults = dict(
        name="store-unit",
        m_values=(4,),
        ncom_values=(5,),
        wmin_values=(1,),
        num_processors_values=(8,),
        heuristics=("IE", "RANDOM"),
        scenarios_per_cell=1,
        trials_per_scenario=2,
        iterations=3,
        makespan_cap=20_000,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def fake_result(cell, makespan=100):
    params = cell.scenario.params
    return InstanceResult(
        heuristic=cell.heuristic,
        m=params.m,
        ncom=params.ncom,
        wmin=params.wmin,
        scenario_index=cell.scenario.scenario_index,
        trial_index=cell.trial,
        success=True,
        makespan=makespan,
        completed_iterations=3,
        total_restarts=1,
        total_configuration_changes=2,
        wall_time_seconds=0.123,
        num_processors=params.num_processors,
    )


@pytest.fixture(params=["jsonl", "sqlite"])
def backend(request):
    return request.param


class TestRoundTrip:
    def test_result_round_trip_through_store(self, tmp_path, backend):
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec, backend=backend)
        originals = []
        for cell in cells:
            result = fake_result(cell, makespan=100 + cell.index)
            originals.append(result)
            store.append(cell, result)
        store.close()

        reopened = ResultStore.open(tmp_path / "c")
        assert reopened.backend == backend
        assert reopened.spec.spec_hash() == spec.spec_hash()
        assert reopened.results() == originals
        assert reopened.completed_cells() == {cell.index for cell in cells}

    def test_as_dict_from_dict_identity(self):
        cell = unit_spec().cells()[0]
        result = fake_result(cell)
        assert InstanceResult.from_dict(result.as_dict()) == result

    def test_append_is_idempotent(self, tmp_path, backend):
        spec = unit_spec()
        cell = spec.cells()[0]
        store = ResultStore.create(tmp_path / "c", spec, backend=backend)
        result = fake_result(cell)
        store.append(cell, result)
        # Same result, different wall time: accepted silently (volatile field).
        store.append(cell, fake_result(cell))
        assert len(store) == 1

    def test_conflicting_append_rejected(self, tmp_path, backend):
        spec = unit_spec()
        cell = spec.cells()[0]
        store = ResultStore.create(tmp_path / "c", spec, backend=backend)
        store.append(cell, fake_result(cell, makespan=100))
        with pytest.raises(ExperimentError):
            store.append(cell, fake_result(cell, makespan=999))

    def test_create_rejects_mismatched_spec(self, tmp_path, backend):
        store = ResultStore.create(tmp_path / "c", unit_spec(), backend=backend)
        store.close()
        with pytest.raises(ExperimentError):
            ResultStore.create(tmp_path / "c", unit_spec(trials_per_scenario=9))

    def test_create_rejects_backend_mismatch(self, tmp_path):
        spec = unit_spec()
        ResultStore.create(tmp_path / "c", spec, backend="sqlite").close()
        with pytest.raises(ExperimentError):
            ResultStore.create(tmp_path / "c", spec, backend="jsonl")
        # Unspecified backend re-opens with whatever the store uses.
        store = ResultStore.create(tmp_path / "c", spec)
        assert store.backend == "sqlite"
        store.close()

    def test_create_reopens_matching_store(self, tmp_path, backend):
        spec = unit_spec()
        first = ResultStore.create(tmp_path / "c", spec, backend=backend)
        first.append(spec.cells()[0], fake_result(spec.cells()[0]))
        first.close()
        again = ResultStore.create(tmp_path / "c", spec, backend=backend)
        assert len(again) == 1


class TestJsonlRecovery:
    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec)
        store.append(cells[0], fake_result(cells[0]))
        store.append(cells[1], fake_result(cells[1]))
        store.close()
        path = tmp_path / "c" / "results.jsonl"
        # Simulate a kill mid-write: chop the final record in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        reopened = ResultStore.open(tmp_path / "c")
        assert reopened.completed_cells() == {cells[0].index}

    def test_append_after_truncated_line_keeps_store_valid(self, tmp_path):
        """Resume-after-kill must truncate the fragment, not glue onto it."""
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec)
        store.append(cells[0], fake_result(cells[0]))
        store.append(cells[1], fake_result(cells[1]))
        store.close()
        path = tmp_path / "c" / "results.jsonl"
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # kill mid-write of record 2

        resumed = ResultStore.open(tmp_path / "c")
        assert resumed.completed_cells() == {cells[0].index}
        resumed.append(cells[1], fake_result(cells[1]))  # the re-run cell
        resumed.close()

        # The store must be cleanly re-openable with both records intact.
        final = ResultStore.open(tmp_path / "c")
        assert final.completed_cells() == {cells[0].index, cells[1].index}

    def test_corrupt_middle_line_raises(self, tmp_path):
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec)
        store.append(cells[0], fake_result(cells[0]))
        store.append(cells[1], fake_result(cells[1]))
        store.close()
        path = tmp_path / "c" / "results.jsonl"
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExperimentError):
            ResultStore.open(tmp_path / "c")


class TestMerge:
    def _sharded_stores(self, tmp_path, backend, spec):
        stores = []
        for shard_index in (1, 2):
            store = ResultStore.create(tmp_path / f"s{shard_index}", spec, backend=backend)
            for cell in spec.shard_cells(shard_index, 2):
                store.append(cell, fake_result(cell, makespan=100 + cell.index))
            store.close()
            stores.append(tmp_path / f"s{shard_index}")
        return stores

    def test_merge_reconstructs_full_campaign(self, tmp_path, backend):
        spec = unit_spec()
        sources = self._sharded_stores(tmp_path, backend, spec)
        merged = merge_stores(sources, tmp_path / "merged")
        assert merged.completed_cells() == {cell.index for cell in spec.cells()}
        makespans = [result.makespan for result in merged.results()]
        assert makespans == [100 + cell.index for cell in spec.cells()]
        merged.close()

    def test_merge_rejects_different_specs(self, tmp_path):
        a = ResultStore.create(tmp_path / "a", unit_spec())
        b = ResultStore.create(tmp_path / "b", unit_spec(trials_per_scenario=9))
        a.close()
        b.close()
        with pytest.raises(ExperimentError):
            merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "m")

    def test_merge_rejects_conflicting_records(self, tmp_path):
        spec = unit_spec()
        cell = spec.cells()[0]
        a = ResultStore.create(tmp_path / "a", spec)
        a.append(cell, fake_result(cell, makespan=1))
        a.close()
        b = ResultStore.create(tmp_path / "b", spec)
        b.append(cell, fake_result(cell, makespan=2))
        b.close()
        with pytest.raises(ExperimentError):
            merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "m")

    def test_merge_overlap_with_identical_records_ok(self, tmp_path):
        spec = unit_spec()
        cell = spec.cells()[0]
        for name in ("a", "b"):
            store = ResultStore.create(tmp_path / name, spec)
            store.append(cell, fake_result(cell))
            store.close()
        merged = merge_stores([tmp_path / "a", tmp_path / "b"], tmp_path / "m")
        assert len(merged) == 1
        merged.close()

    def test_jsonl_merge_is_byte_identical_to_sequential(self, tmp_path):
        """Merged shards reproduce an unsharded store's bytes exactly.

        Wall times are deterministic here (fake results), so the comparison
        needs no normalisation: canonical JSONL in canonical cell order.
        """
        spec = unit_spec()
        full = ResultStore.create(tmp_path / "full", spec)
        for cell in spec.cells():
            full.append(cell, fake_result(cell, makespan=100 + cell.index))
        full.close()
        sources = self._sharded_stores(tmp_path, "jsonl", spec)
        merge_stores(sources, tmp_path / "merged").close()
        assert (tmp_path / "full" / "results.jsonl").read_bytes() == (
            tmp_path / "merged" / "results.jsonl"
        ).read_bytes()


class TestStatus:
    def test_status_counts(self, tmp_path):
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec)
        for cell in cells[:3]:
            store.append(cell, fake_result(cell))
        status = store_status(store)
        assert status.total_cells == len(cells) == 4
        assert status.completed == 3
        assert status.remaining == 1
        done = dict((h, d) for h, d, _ in status.by_heuristic)
        assert done["IE"] == 2
        assert done["RANDOM"] == 1
        store.close()

    def test_manifest_is_json(self, tmp_path):
        ResultStore.create(tmp_path / "c", unit_spec()).close()
        manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert manifest["backend"] == "jsonl"
        assert manifest["spec"]["name"] == "store-unit"


def fake_metrics(stride=32, end_slot=100, scheduler="IE"):
    count = (end_slot - 1) // stride + 1
    return {
        "stride": stride,
        "end_slot": end_slot,
        "scheduler": scheduler,
        "series": {
            "pool_up": [float(i % 8) for i in range(count)],
            "work_completed": [round(1.5 * i, 3) for i in range(count)],
        },
    }


class TestMetricsPersistence:
    def test_series_round_trip(self, tmp_path, backend):
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec, backend=backend)
        originals = []
        for cell in cells:
            result = dataclasses.replace(
                fake_result(cell, makespan=100 + cell.index),
                metrics=fake_metrics(end_slot=100 + cell.index, scheduler=cell.heuristic),
            )
            originals.append(result)
            store.append(cell, result)
        store.close()
        reopened = ResultStore.open(tmp_path / "c")
        assert reopened.backend == backend
        assert reopened.results() == originals
        for stored, original in zip(reopened.results(), originals):
            assert stored.metrics == original.metrics

    def test_metrics_key_omitted_when_absent(self):
        """Records written before the metrics layer must stay byte-identical,
        so as_dict omits (not nulls) a missing payload."""
        cell = unit_spec().cells()[0]
        result = fake_result(cell)
        assert "metrics" not in result.as_dict()
        result = dataclasses.replace(result, metrics=fake_metrics())
        assert result.as_dict()["metrics"] == fake_metrics()
        assert InstanceResult.from_dict(result.as_dict()) == result

    def test_metrics_are_volatile_for_idempotent_appends(self, tmp_path, backend):
        """Re-running a cell with the collector toggled differently must not
        conflict: series (like wall time) are not part of a cell's identity."""
        spec = unit_spec()
        cell = spec.cells()[0]
        store = ResultStore.create(tmp_path / "c", spec, backend=backend)
        bare = fake_result(cell)
        store.append(cell, bare)
        with_series = dataclasses.replace(fake_result(cell), metrics=fake_metrics())
        store.append(cell, with_series)  # accepted silently
        assert len(store) == 1
        # A genuinely different scalar result still conflicts.
        with pytest.raises(ExperimentError):
            store.append(cell, fake_result(cell, makespan=999))
        store.close()

    def test_truncated_trailing_metrics_record_recovers(self, tmp_path):
        """Series make records long; a mid-write kill still only drops the
        final fragment on resume."""
        spec = unit_spec()
        cells = spec.cells()
        store = ResultStore.create(tmp_path / "c", spec)
        for cell in cells[:2]:
            result = dataclasses.replace(
                fake_result(cell), metrics=fake_metrics(end_slot=2000)
            )
            store.append(cell, result)
        store.close()
        path = tmp_path / "c" / "results.jsonl"
        text = path.read_text()
        path.write_text(text[: len(text) - 40])  # chop inside the series
        resumed = ResultStore.open(tmp_path / "c")
        assert resumed.completed_cells() == {cells[0].index}
        repaired = dataclasses.replace(
            fake_result(cells[1]), metrics=fake_metrics(end_slot=2000)
        )
        resumed.append(cells[1], repaired)
        resumed.close()
        final = ResultStore.open(tmp_path / "c")
        assert final.completed_cells() == {cells[0].index, cells[1].index}
        assert final.results()[1].metrics == repaired.metrics
