"""Tests for the instance/scenario/campaign runner."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import CampaignScale, ExperimentScenario, ScenarioParameters
from repro.experiments.runner import run_campaign, run_instance, run_scenario

pytestmark = pytest.mark.slow

SMALL_SCALE = CampaignScale(
    ncom_values=(5,),
    wmin_values=(1,),
    scenarios_per_cell=1,
    trials_per_scenario=2,
    iterations=2,
    makespan_cap=20_000,
    num_processors=8,
)


def small_scenario():
    return ExperimentScenario(
        ScenarioParameters(m=4, ncom=5, wmin=1, num_processors=8), 0, campaign="test"
    )


class TestRunInstance:
    def test_basic(self):
        result = run_instance(small_scenario(), "IE", trial=0, scale=SMALL_SCALE)
        assert result.heuristic == "IE"
        assert result.success
        assert result.makespan is not None and result.makespan > 0
        assert result.m == 4
        assert result.wall_time_seconds > 0

    def test_reproducible(self):
        a = run_instance(small_scenario(), "IE", trial=0, scale=SMALL_SCALE)
        b = run_instance(small_scenario(), "IE", trial=0, scale=SMALL_SCALE)
        assert a.makespan == b.makespan
        assert a.total_restarts == b.total_restarts

    def test_trials_differ(self):
        makespans = {
            run_instance(small_scenario(), "IE", trial=t, scale=SMALL_SCALE).makespan
            for t in range(4)
        }
        assert len(makespans) > 1

    def test_round_trip_dict(self):
        from repro.experiments.runner import InstanceResult

        result = run_instance(small_scenario(), "RANDOM", trial=1, scale=SMALL_SCALE)
        clone = InstanceResult.from_dict(result.as_dict())
        assert clone == result

    def test_keys(self):
        result = run_instance(small_scenario(), "IE", trial=2, scale=SMALL_SCALE)
        assert result.scenario_key() == (4, 5, 1, 0)
        assert result.instance_key() == (4, 5, 1, 0, 2)


class TestRunScenario:
    def test_all_heuristics_and_trials(self):
        results = run_scenario(small_scenario(), ["IE", "RANDOM"], scale=SMALL_SCALE)
        assert len(results) == 2 * SMALL_SCALE.trials_per_scenario
        heuristics = {result.heuristic for result in results}
        assert heuristics == {"IE", "RANDOM"}

    def test_availability_is_paired_across_heuristics(self):
        """Same trial -> same availability realisation for every heuristic.

        We cannot observe the realisation directly from InstanceResult, but a
        shared-platform scenario with paired seeds must make IE deterministic
        across the two calls (one inside run_scenario, one standalone).
        """
        results = run_scenario(small_scenario(), ["IE"], scale=SMALL_SCALE)
        standalone = run_instance(small_scenario(), "IE", trial=0, scale=SMALL_SCALE)
        paired = [r for r in results if r.trial_index == 0][0]
        assert paired.makespan == standalone.makespan


class TestRunCampaign:
    def test_small_campaign(self):
        campaign = run_campaign(
            4, heuristics=("IE", "Y-IE", "RANDOM"), scale=SMALL_SCALE, label="unit"
        )
        assert campaign.m == 4
        assert len(campaign.results) == 3 * SMALL_SCALE.trials_per_scenario
        assert campaign.num_instances() == SMALL_SCALE.trials_per_scenario
        grouped = campaign.by_heuristic()
        assert set(grouped) == {"IE", "Y-IE", "RANDOM"}

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ExperimentError):
            run_campaign(4, heuristics=("IE", "NOPE"), scale=SMALL_SCALE)

    def test_progress_callback(self):
        seen = []
        run_campaign(
            4, heuristics=("IE",), scale=SMALL_SCALE, label="unit",
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1][0] == seen[-1][1] == 1

    def test_parallel_matches_serial(self):
        serial = run_campaign(4, heuristics=("IE",), scale=SMALL_SCALE, label="par")
        parallel = run_campaign(4, heuristics=("IE",), scale=SMALL_SCALE, label="par", n_jobs=2)
        serial_map = {r.instance_key(): r.makespan for r in serial.results}
        parallel_map = {r.instance_key(): r.makespan for r in parallel.results}
        assert serial_map == parallel_map
