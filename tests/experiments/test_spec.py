"""Tests for declarative campaign specs (spec.py) and AvailabilitySpec."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.scenarios import AvailabilitySpec
from repro.experiments.spec import (
    BUILTIN_SPEC_NAMES,
    CampaignSpec,
    builtin_spec,
    load_spec,
)


def small_spec(**overrides):
    defaults = dict(
        name="unit",
        m_values=(4,),
        ncom_values=(5,),
        wmin_values=(1, 2),
        num_processors_values=(8,),
        heuristics=("IE", "RANDOM"),
        scenarios_per_cell=2,
        trials_per_scenario=3,
        iterations=3,
        makespan_cap=20_000,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestAvailabilitySpec:
    def test_default_is_paper_markov(self):
        spec = AvailabilitySpec()
        assert spec.kind == "markov"
        assert spec.is_default_markov()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            AvailabilitySpec(kind="weibull")

    def test_trace_requires_path(self):
        with pytest.raises(ExperimentError):
            AvailabilitySpec(kind="trace")

    def test_range_normalisation_and_round_trip(self):
        spec = AvailabilitySpec.from_mapping(
            {"kind": "semi-markov", "mean_up": [25, 60], "up_shape": 0.6}
        )
        assert spec.get("mean_up") == (25.0, 60.0)
        assert spec.get("up_shape") == 0.6
        clone = AvailabilitySpec.from_dict(spec.as_dict())
        assert clone == spec

    def test_bad_range_rejected(self):
        with pytest.raises(ExperimentError):
            AvailabilitySpec(kind="markov", parameters=(("stay_low", (1, 2, 3)),))

    def test_markov_range_parameter_rejected_with_clear_error(self):
        """[stay_low, stay_high] is already the range; a range-valued
        stay_low must raise ExperimentError, not a raw TypeError."""
        from repro.experiments.scenarios import ExperimentScenario, ScenarioParameters

        scenario = ExperimentScenario(
            params=ScenarioParameters(m=2, ncom=2, wmin=1, num_processors=2),
            scenario_index=0,
            campaign="unit",
            availability=AvailabilitySpec(
                kind="markov", parameters=(("stay_low", (0.3, 0.5)),)
            ),
        )
        with pytest.raises(ExperimentError, match="stay_low"):
            scenario.build_platform()


class TestCampaignSpec:
    def test_num_cells_matches_enumeration(self):
        spec = small_spec()
        cells = spec.cells()
        assert len(cells) == spec.num_cells() == 1 * 1 * 2 * 2 * 3 * 2

    def test_cell_indices_are_canonical(self):
        cells = small_spec().cells()
        assert [cell.index for cell in cells] == list(range(len(cells)))
        # Deterministic: a second enumeration yields identical keys.
        again = small_spec().cells()
        assert [cell.key() for cell in cells] == [cell.key() for cell in again]

    def test_cell_keys_unique(self):
        cells = small_spec(num_processors_values=(8, 10)).cells()
        assert len({cell.key() for cell in cells}) == len(cells)

    @pytest.mark.parametrize("shard_count", [1, 2, 3, 5, 7])
    def test_shards_partition_cells(self, shard_count):
        spec = small_spec()
        all_indices = {cell.index for cell in spec.cells()}
        seen = set()
        for shard_index in range(1, shard_count + 1):
            shard = {cell.index for cell in spec.shard_cells(shard_index, shard_count)}
            assert not (shard & seen), "shards must be disjoint"
            seen |= shard
        assert seen == all_indices, "shards must jointly cover every cell"

    def test_shards_are_balanced(self):
        spec = small_spec()
        sizes = [len(spec.shard_cells(i, 5)) for i in range(1, 6)]
        assert max(sizes) - min(sizes) <= 1

    def test_bad_shard_rejected(self):
        spec = small_spec()
        with pytest.raises(ExperimentError):
            spec.shard_cells(0, 2)
        with pytest.raises(ExperimentError):
            spec.shard_cells(3, 2)

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ExperimentError):
            small_spec(heuristics=("IE", "NOPE"))

    def test_round_trip_dict_and_hash(self):
        spec = small_spec()
        clone = CampaignSpec.from_dict(spec.as_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_hash_changes_with_grid(self):
        assert small_spec().spec_hash() != small_spec(wmin_values=(1,)).spec_hash()

    def test_default_markov_scenarios_match_legacy(self):
        """Spec-generated scenarios reuse the legacy seed derivation exactly."""
        from repro.experiments.scenarios import generate_scenarios

        spec = small_spec()
        legacy = generate_scenarios(spec.scale_for(8), 4, campaign="unit")
        assert [s.trial_seed(0) for s in spec.scenarios()] == [
            s.trial_seed(0) for s in legacy
        ]


class TestBuiltins:
    def test_names_stable(self):
        assert "paper" in BUILTIN_SPEC_NAMES
        assert "smoke" in BUILTIN_SPEC_NAMES

    def test_paper_grid_is_section_7a(self):
        spec = builtin_spec("paper")
        assert spec.m_values == (5, 10)
        assert spec.ncom_values == (5, 10, 20)
        assert spec.wmin_values == tuple(range(1, 11))
        assert spec.num_processors_values == (20,)
        assert spec.scenarios_per_cell == spec.trials_per_scenario == 10
        # 2 * 3 * 10 * 10 * 10 = 6,000 problem instances, as the paper states.
        assert spec.num_cells() // len(spec.heuristics) == 6_000

    def test_unknown_builtin(self):
        with pytest.raises(ExperimentError):
            builtin_spec("nope")


class TestLoadSpec:
    def test_json_spec(self, tmp_path):
        payload = {
            "campaign": {
                "name": "file-json",
                "m": [4],
                "heuristics": ["IE"],
                "scenarios_per_cell": 1,
                "trials": 1,
                "iterations": 2,
                "makespan_cap": 10_000,
            },
            "grid": {"ncom": [5], "wmin": [1], "num_processors": [6]},
            "availability": {"kind": "markov"},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        spec = load_spec(path)
        assert spec.name == "file-json"
        assert spec.num_cells() == 1

    def test_toml_spec(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    "[campaign]",
                    'name = "file-toml"',
                    "m = [4]",
                    'heuristics = ["IE", "RANDOM"]',
                    "trials = 2",
                    "scenarios_per_cell = 1",
                    "iterations = 2",
                    "makespan_cap = 10000",
                    "[grid]",
                    "ncom = [5]",
                    "wmin = [1]",
                    "num_processors = [6]",
                ]
            )
        )
        spec = load_spec(path)
        assert spec.name == "file-toml"
        assert spec.heuristics == ("IE", "RANDOM")

    def test_example_smoke_spec_parses(self):
        pytest.importorskip("tomllib")
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples"
        spec = load_spec(examples / "campaign_smoke.toml")
        assert spec.name == "smoke"
        assert spec.num_cells() == 4

    def test_example_robustness_spec_parses(self):
        pytest.importorskip("tomllib")
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples"
        spec = load_spec(examples / "campaign_robustness.toml")
        assert spec.availability.kind == "semi-markov"
        assert spec.availability.get("mean_up") == (25.0, 60.0)

    def test_unknown_key_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"campaign": {"frobnicate": 1}}))
        with pytest.raises(ExperimentError):
            load_spec(path)

    def _trace_spec_dir(self, directory):
        directory.mkdir(parents=True, exist_ok=True)
        trace_payload = {"type": "trace", "rows": ["u" * 50, "u" * 50]}
        (directory / "trace.json").write_text(json.dumps(trace_payload))
        spec_payload = {
            "campaign": {"name": "tr", "m": [2], "heuristics": ["IE"]},
            "grid": {"ncom": [2], "wmin": [1], "num_processors": [2]},
            "availability": {"kind": "trace", "path": "trace.json"},
        }
        path = directory / "spec.json"
        path.write_text(json.dumps(spec_payload))
        return path

    def test_relative_trace_path_resolved_at_runtime_only(self, tmp_path):
        spec = load_spec(self._trace_spec_dir(tmp_path / "a"))
        # The spec keeps the path as written (campaign identity is portable)…
        assert spec.availability.get("path") == "trace.json"
        assert spec.base_dir == str(tmp_path / "a")
        # …and scenarios resolve it against the spec file's directory.
        scenario = spec.scenarios()[0]
        resolved = scenario.availability.get("path")
        assert resolved == str((tmp_path / "a" / "trace.json").resolve())
        assert scenario.build_platform().num_processors == 2

    def test_trace_spec_hash_is_machine_portable(self, tmp_path):
        """Identical spec files in different directories must hash the same,
        or shards run from different checkouts could never be merged."""
        spec_a = load_spec(self._trace_spec_dir(tmp_path / "machine-a"))
        spec_b = load_spec(self._trace_spec_dir(tmp_path / "deeper" / "machine-b"))
        assert spec_a.spec_hash() == spec_b.spec_hash()
        assert spec_a == spec_b  # base_dir is runtime context, not identity

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_spec(tmp_path / "nope.json")
