"""Tests for the scenario grid generation."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import CampaignScale, ExperimentScenario, ScenarioParameters, generate_scenarios


class TestScenarioParameters:
    def test_basic(self):
        params = ScenarioParameters(m=5, ncom=10, wmin=3)
        assert params.label() == "m5_ncom10_wmin3"
        spec = params.platform_spec()
        assert spec.ncom == 10
        assert spec.wmin == 3
        assert spec.tprog == 15

    @pytest.mark.parametrize("kwargs", [
        {"m": 0, "ncom": 1, "wmin": 1},
        {"m": 1, "ncom": 0, "wmin": 1},
        {"m": 1, "ncom": 1, "wmin": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ExperimentError):
            ScenarioParameters(**kwargs)


class TestExperimentScenario:
    def test_platform_is_deterministic(self):
        scenario = ExperimentScenario(ScenarioParameters(m=5, ncom=5, wmin=1), 0)
        a = scenario.build_platform()
        b = scenario.build_platform()
        assert a.speeds().tolist() == b.speeds().tolist()

    def test_different_scenarios_have_different_platforms(self):
        params = ScenarioParameters(m=5, ncom=5, wmin=1)
        a = ExperimentScenario(params, 0).build_platform()
        b = ExperimentScenario(params, 1).build_platform()
        assert a.speeds().tolist() != b.speeds().tolist() or not all(
            (x.availability.matrix == y.availability.matrix).all()
            for x, y in zip(a.processors, b.processors)
        )

    def test_trial_seeds_differ(self):
        scenario = ExperimentScenario(ScenarioParameters(m=5, ncom=5, wmin=1), 0)
        assert scenario.trial_seed(0) != scenario.trial_seed(1)
        assert scenario.trial_seed(0) == scenario.trial_seed(0)

    def test_campaign_label_changes_seeds(self):
        params = ScenarioParameters(m=5, ncom=5, wmin=1)
        a = ExperimentScenario(params, 0, campaign="x")
        b = ExperimentScenario(params, 0, campaign="y")
        assert a.platform_seed() != b.platform_seed()

    def test_application(self):
        scenario = ExperimentScenario(ScenarioParameters(m=7, ncom=5, wmin=1), 2)
        app = scenario.build_application(iterations=4)
        assert app.tasks_per_iteration == 7
        assert app.iterations == 4

    def test_platform_matches_parameters(self):
        scenario = ExperimentScenario(ScenarioParameters(m=5, ncom=20, wmin=2, num_processors=12), 0)
        platform = scenario.build_platform()
        assert platform.num_processors == 12
        assert platform.ncom == 20
        assert platform.tdata == 2
        assert platform.tprog == 10


class TestCampaignScale:
    def test_paper_scale(self):
        scale = CampaignScale.paper()
        assert scale.ncom_values == (5, 10, 20)
        assert scale.wmin_values == tuple(range(1, 11))
        assert scale.num_instances(num_m_values=2) == 6000

    def test_reduced_and_smoke_are_smaller(self):
        assert CampaignScale.reduced().num_instances() < CampaignScale.paper().num_instances()
        assert CampaignScale.smoke().num_instances() <= 4

    def test_with_overrides(self):
        scale = CampaignScale.smoke().with_overrides(trials_per_scenario=3)
        assert scale.trials_per_scenario == 3
        assert scale.ncom_values == CampaignScale.smoke().ncom_values

    @pytest.mark.parametrize("kwargs", [
        {"ncom_values": ()},
        {"wmin_values": ()},
        {"scenarios_per_cell": 0},
        {"trials_per_scenario": 0},
        {"iterations": 0},
        {"makespan_cap": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ExperimentError):
            CampaignScale(**kwargs)


class TestGenerateScenarios:
    def test_grid_size(self):
        scale = CampaignScale(
            ncom_values=(5, 10), wmin_values=(1, 2, 3), scenarios_per_cell=4,
            trials_per_scenario=1,
        )
        scenarios = generate_scenarios(scale, m=5)
        assert len(scenarios) == 2 * 3 * 4

    def test_all_cells_covered(self):
        scale = CampaignScale(ncom_values=(5, 20), wmin_values=(1, 7), scenarios_per_cell=1,
                              trials_per_scenario=1)
        scenarios = generate_scenarios(scale, m=10)
        cells = {(s.params.ncom, s.params.wmin) for s in scenarios}
        assert cells == {(5, 1), (5, 7), (20, 1), (20, 7)}
        assert all(s.params.m == 10 for s in scenarios)

    def test_invalid_m(self):
        with pytest.raises(ExperimentError):
            generate_scenarios(CampaignScale.smoke(), m=0)
