"""Tests for the paper-comparison report."""

import pytest

from repro.experiments.metrics import HeuristicSummary
from repro.experiments.report import compare_with_paper, format_comparison
from repro.experiments.tables import PAPER_TABLE1


def make_summary(name, pct_diff):
    return HeuristicSummary(
        heuristic=name, fails=0, pct_diff=pct_diff, pct_wins=50.0, pct_wins30=80.0,
        stdv=0.5, num_scenarios=4, num_trials=8,
    )


class TestCompareWithPaper:
    def test_perfect_agreement(self):
        summaries = [make_summary(name, row[1]) for name, row in PAPER_TABLE1.items()]
        comparison = compare_with_paper(summaries, PAPER_TABLE1)
        assert comparison.rank_correlation == pytest.approx(1.0)
        assert comparison.sign_agreement == pytest.approx(1.0)
        assert comparison.agrees_on_shape()
        assert set(comparison.measured_winners) == set(comparison.paper_winners)

    def test_inverted_ranking_detected(self):
        summaries = [make_summary(name, -row[1]) for name, row in PAPER_TABLE1.items()]
        comparison = compare_with_paper(summaries, PAPER_TABLE1)
        assert comparison.rank_correlation == pytest.approx(-1.0)
        assert not comparison.agrees_on_shape()

    def test_partial_overlap(self):
        summaries = [make_summary("Y-IE", -5.0), make_summary("IE", 0.0),
                     make_summary("NOT-IN-PAPER", 3.0)]
        comparison = compare_with_paper(summaries, PAPER_TABLE1)
        assert "NOT-IN-PAPER" not in comparison.diffs
        assert comparison.rank_correlation is None  # fewer than 3 common heuristics
        assert comparison.sign_agreement == pytest.approx(1.0)

    def test_missing_measurements_are_skipped(self):
        summaries = [make_summary("Y-IE", None), make_summary("RANDOM", 500.0),
                     make_summary("IE", 0.0)]
        comparison = compare_with_paper(summaries, PAPER_TABLE1)
        assert "Y-IE" not in comparison.common_heuristics
        assert "RANDOM" in comparison.common_heuristics

    def test_format_comparison(self):
        summaries = [make_summary(name, row[1] * 0.8) for name, row in PAPER_TABLE1.items()]
        comparison = compare_with_paper(summaries, PAPER_TABLE1)
        text = format_comparison(comparison)
        assert "Spearman" in text
        assert "Y-IE" in text
        assert "Beat IE in the paper" in text
