"""Tests for the shared per-(scenario, trial) availability trace bank."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import TraceBank, run_instance, run_scenario
from repro.experiments.scenarios import CampaignScale, ExperimentScenario, ScenarioParameters
from repro.utils.rng import derive_run_streams


def make_scenario(num_processors=10):
    params = ScenarioParameters(m=5, ncom=5, wmin=2, num_processors=num_processors)
    return ExperimentScenario(params=params, scenario_index=0, campaign="bank-tests")


def test_bank_trace_matches_direct_sampling():
    """The bank replays exactly what the engine would sample for the seed."""
    scenario = make_scenario()
    platform = scenario.build_platform()
    seed = scenario.trial_seed(0)
    bank = TraceBank(platform, horizon=600, chunk=64)
    trace = bank.trace_for(seed)
    assert trace.num_processors == platform.num_processors
    assert trace.horizon == 600

    # Reference: per-worker streams consumed model by model, slot by slot.
    rngs, _ = derive_run_streams(seed, platform.num_processors)
    reference = np.empty((platform.num_processors, 600), dtype=np.int8)
    for worker, (processor, rng) in enumerate(zip(platform.processors, rngs)):
        model = processor.availability
        model.reset()
        current = model.initial_state(rng)
        reference[worker, 0] = int(current)
        for slot in range(1, 600):
            current = model.next_state(current, rng)
            reference[worker, slot] = int(current)

    # Request blocks out of order sizes to exercise the lazy growth.
    assert np.array_equal(trace.block(0, 5), reference[:, 0:5])
    assert np.array_equal(trace.block(5, 130), reference[:, 5:130])
    assert np.array_equal(trace.block(130, 600), reference[:, 130:600])
    # Re-reads hit the materialised buffer and stay identical.
    assert np.array_equal(trace.block(0, 600), reference)


def test_bank_trace_rejects_out_of_range_blocks():
    scenario = make_scenario()
    bank = TraceBank(scenario.build_platform(), horizon=100)
    trace = bank.trace_for(scenario.trial_seed(0))
    with pytest.raises(ExperimentError):
        trace.block(0, 101)
    with pytest.raises(ExperimentError):
        trace.block(-1, 10)


def test_run_instance_with_bank_trace_is_bit_identical():
    scenario = make_scenario()
    platform = scenario.build_platform()
    scale = CampaignScale.smoke()
    bank = TraceBank(platform, horizon=scale.makespan_cap)
    for heuristic in ("RANDOM", "IE", "Y-IE"):
        direct = run_instance(scenario, heuristic, 0, scale=scale, platform=platform)
        replayed = run_instance(
            scenario, heuristic, 0, scale=scale, platform=platform,
            trace=bank.trace_for(scenario.trial_seed(0)),
        )
        direct_dict, replay_dict = direct.as_dict(), replayed.as_dict()
        direct_dict.pop("wall_time_seconds")
        replay_dict.pop("wall_time_seconds")
        assert direct_dict == replay_dict, heuristic


def test_run_scenario_shared_availability_is_bit_identical():
    scenario = make_scenario()
    scale = CampaignScale.smoke().with_overrides(trials_per_scenario=2, num_processors=10)
    heuristics = ("RANDOM", "IE")
    shared = run_scenario(scenario, heuristics, scale=scale, share_availability=True)
    unshared = run_scenario(scenario, heuristics, scale=scale, share_availability=False)
    assert len(shared) == len(unshared) == 4
    for a, b in zip(shared, unshared):
        a_dict, b_dict = a.as_dict(), b.as_dict()
        a_dict.pop("wall_time_seconds")
        b_dict.pop("wall_time_seconds")
        assert a_dict == b_dict
