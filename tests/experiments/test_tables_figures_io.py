"""Tests for table/figure builders and campaign persistence."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.figures import figure2_series, format_figure2
from repro.experiments.io import load_campaign, save_campaign
from repro.experiments.metrics import summarize_results
from repro.experiments.runner import CampaignResult, InstanceResult
from repro.experiments.scenarios import CampaignScale
from repro.experiments.tables import PAPER_TABLE1, PAPER_TABLE2, format_summaries


def make_result(heuristic, makespan, *, success=True, wmin=1, scenario=0, trial=0):
    return InstanceResult(
        heuristic=heuristic,
        m=10,
        ncom=5,
        wmin=wmin,
        scenario_index=scenario,
        trial_index=trial,
        success=success,
        makespan=makespan if success else None,
        completed_iterations=10 if success else 0,
        total_restarts=1,
        total_configuration_changes=2,
    )


def synthetic_results():
    results = []
    for wmin in (1, 5, 10):
        for scenario in range(2):
            base = 100 * wmin + 10 * scenario
            results.append(make_result("IE", base, wmin=wmin, scenario=scenario))
            # Y-IE is better on easy instances, worse on the hardest ones.
            factor = 0.8 if wmin < 10 else 1.2
            results.append(
                make_result("Y-IE", int(base * factor), wmin=wmin, scenario=scenario)
            )
    return results


class TestPaperReferenceTables:
    def test_table1_contains_all_17_heuristics(self):
        assert len(PAPER_TABLE1) == 17
        assert PAPER_TABLE1["Y-IE"][1] == -11.82
        assert PAPER_TABLE1["RANDOM"][1] > 2000

    def test_table2_contains_best_8(self):
        assert len(PAPER_TABLE2) == 8
        assert set(PAPER_TABLE2) >= {"Y-IE", "P-IE", "IE"}


class TestFormatSummaries:
    def test_renders_rows(self):
        summaries = summarize_results(synthetic_results())
        text = format_summaries(summaries, title="Test table")
        assert text.startswith("Test table")
        assert "Y-IE" in text
        assert "%diff" in text


class TestFigure2:
    def test_series_structure(self):
        series = figure2_series(synthetic_results())
        assert set(series) == {"IE", "Y-IE"}
        assert [wmin for wmin, _ in series["Y-IE"]] == [1, 5, 10]
        # Reference series is identically zero.
        assert all(value == pytest.approx(0.0) for _, value in series["IE"])

    def test_crossover_shape(self):
        series = dict(figure2_series(synthetic_results())["Y-IE"])
        assert series[1] < 0  # better than IE on easy instances
        assert series[10] > 0  # worse on the hardest instances

    def test_missing_reference(self):
        results = [make_result("Y-IE", 100)]
        with pytest.raises(ExperimentError):
            figure2_series(results)

    def test_format_figure2(self):
        text = format_figure2(figure2_series(synthetic_results()))
        assert "wmin" in text.splitlines()[0]
        assert len(text.splitlines()) >= 5

    def test_failed_runs_are_ignored(self):
        results = synthetic_results() + [
            make_result("Y-IE", None, success=False, wmin=1, scenario=5)
        ]
        series = figure2_series(results)
        assert [wmin for wmin, _ in series["Y-IE"]] == [1, 5, 10]


class TestCampaignIO:
    def test_round_trip(self, tmp_path):
        campaign = CampaignResult(
            label="io-test",
            m=10,
            heuristics=("IE", "Y-IE"),
            scale=CampaignScale.smoke(),
            results=synthetic_results(),
        )
        path = save_campaign(campaign, tmp_path / "campaign.json")
        loaded = load_campaign(path)
        assert loaded.label == "io-test"
        assert loaded.m == 10
        assert loaded.heuristics == ("IE", "Y-IE")
        assert loaded.scale.makespan_cap == CampaignScale.smoke().makespan_cap
        assert len(loaded.results) == len(campaign.results)
        assert loaded.results[0] == campaign.results[0]

    def test_load_rejects_bad_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_campaign(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ExperimentError):
            load_campaign(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_campaign(tmp_path / "absent.json")
