"""Tests for the paper's comparison metrics (#fails, %diff, %wins, %wins30, stdv)."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.metrics import (
    HeuristicSummary,
    relative_difference,
    summarize_results,
)
from repro.experiments.runner import InstanceResult


def make_result(heuristic, makespan, *, success=True, m=5, ncom=5, wmin=1,
                scenario=0, trial=0):
    return InstanceResult(
        heuristic=heuristic,
        m=m,
        ncom=ncom,
        wmin=wmin,
        scenario_index=scenario,
        trial_index=trial,
        success=success,
        makespan=makespan if success else None,
        completed_iterations=10 if success else 3,
        total_restarts=0,
        total_configuration_changes=0,
    )


class TestRelativeDifference:
    def test_sign_convention(self):
        assert relative_difference(80.0, 100.0) == pytest.approx(-0.25)
        assert relative_difference(150.0, 100.0) == pytest.approx(0.5)
        assert relative_difference(100.0, 100.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            relative_difference(0.0, 10.0)


class TestSummarizeResults:
    def test_reference_required(self):
        results = [make_result("Y-IE", 100)]
        with pytest.raises(ExperimentError):
            summarize_results(results)

    def test_reference_has_zero_diff_and_full_wins(self):
        results = [
            make_result("IE", 100, scenario=s, trial=t)
            for s in range(2) for t in range(2)
        ]
        summaries = summarize_results(results)
        assert len(summaries) == 1
        row = summaries[0]
        assert row.heuristic == "IE"
        assert row.pct_diff == pytest.approx(0.0)
        assert row.pct_wins == pytest.approx(100.0)
        assert row.pct_wins30 == pytest.approx(100.0)
        assert row.stdv == pytest.approx(0.0)

    def test_better_heuristic_has_negative_diff(self):
        results = []
        for scenario in range(3):
            for trial in range(2):
                results.append(make_result("IE", 100, scenario=scenario, trial=trial))
                results.append(make_result("Y-IE", 80, scenario=scenario, trial=trial))
        summaries = {s.heuristic: s for s in summarize_results(results)}
        assert summaries["Y-IE"].pct_diff == pytest.approx(-25.0)
        assert summaries["Y-IE"].pct_wins == pytest.approx(100.0)
        assert summaries["Y-IE"].fails == 0

    def test_sorted_best_first(self):
        results = []
        for scenario in range(2):
            results.append(make_result("IE", 100, scenario=scenario))
            results.append(make_result("GOOD", 50, scenario=scenario))
            results.append(make_result("BAD", 200, scenario=scenario))
        names = [s.heuristic for s in summarize_results(results)]
        assert names == ["GOOD", "IE", "BAD"]

    def test_wins30_margin(self):
        results = [
            make_result("IE", 100),
            make_result("H", 125),
        ]
        summaries = {s.heuristic: s for s in summarize_results(results)}
        assert summaries["H"].pct_wins == 0.0
        assert summaries["H"].pct_wins30 == 100.0
        # 25% slower on the only scenario.
        assert summaries["H"].pct_diff == pytest.approx(25.0)

    def test_failed_heuristic_trial_counts_as_loss_and_fail(self):
        results = [
            make_result("IE", 100, trial=0),
            make_result("IE", 100, trial=1),
            make_result("H", 90, trial=0),
            make_result("H", None, success=False, trial=1),
        ]
        summaries = {s.heuristic: s for s in summarize_results(results)}
        assert summaries["H"].fails == 1
        assert summaries["H"].pct_wins == pytest.approx(50.0)

    def test_reference_failure_excludes_trial(self):
        results = [
            make_result("IE", None, success=False, trial=0),
            make_result("IE", 100, trial=1),
            make_result("H", 50, trial=0),
            make_result("H", 100, trial=1),
        ]
        summaries = {s.heuristic: s for s in summarize_results(results)}
        # Trial 0 is dropped entirely (the reference failed there).
        assert summaries["H"].pct_wins == pytest.approx(100.0)
        assert summaries["H"].pct_diff == pytest.approx(0.0)

    def test_per_scenario_averaging(self):
        # Scenario 0: H is 2x slower; scenario 1: H is 2x faster -> the
        # per-scenario relative differences (+1.0 and -1.0) average to zero.
        results = [
            make_result("IE", 100, scenario=0),
            make_result("H", 200, scenario=0),
            make_result("IE", 200, scenario=1),
            make_result("H", 100, scenario=1),
        ]
        summaries = {s.heuristic: s for s in summarize_results(results)}
        assert summaries["H"].pct_diff == pytest.approx(0.0)
        assert summaries["H"].stdv == pytest.approx(1.0)

    def test_heuristic_with_no_successes(self):
        results = [
            make_result("IE", 100),
            make_result("H", None, success=False),
        ]
        summaries = {s.heuristic: s for s in summarize_results(results)}
        assert summaries["H"].pct_diff is None
        assert summaries["H"].pct_wins == 0.0
        assert summaries["H"].fails == 1

    def test_as_row_and_dict(self):
        summary = HeuristicSummary(
            heuristic="X", fails=1, pct_diff=-10.123, pct_wins=70.0, pct_wins30=90.0,
            stdv=0.456, num_scenarios=3, num_trials=6,
        )
        row = summary.as_row()
        assert row[0] == "X"
        assert row[2] == -10.12
        payload = summary.as_dict()
        assert payload["fails"] == 1
