"""Unit tests for the wear-level degradation availability model."""

import numpy as np
import pytest

from repro.exceptions import InvalidModelError
from repro.hazards import DegradationAvailabilityModel
from repro.hazards.degradation import SOJOURN_KINDS, sojourn_distribution
from repro.types import DOWN, RECLAIMED, UP
from repro.utils.rng import as_generator

#: sample_trajectory(40, 2024) of the fixed model below; pins both the wear
#: semantics and the RNG consumption order across refactors.
GOLDEN_TRAJECTORY = [
    0, 0, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 1, 1, 1, 0, 0, 0, 0,
]


def golden_model():
    return DegradationAvailabilityModel(
        wear_rate=0.2,
        pm_level=2,
        fail_level=4,
        compliance=0.5,
        pm_time=sojourn_distribution("deterministic", 3.0),
        cm_time=sojourn_distribution("deterministic", 6.0),
    )


class TestStreamEquivalence:
    def test_sample_block_matches_next_state_loop(self):
        """Both sampling paths consume the RNG in exactly the same order."""
        length = 5000
        stepped_model = DegradationAvailabilityModel(wear_rate=0.05)
        rng = as_generator(99)
        state = stepped_model.initial_state(rng)
        stepped = [int(state)]
        for _ in range(length - 1):
            state = stepped_model.next_state(state, rng)
            stepped.append(int(state))

        block_model = DegradationAvailabilityModel(wear_rate=0.05)
        rng = as_generator(99)
        first = block_model.initial_state(rng)
        block = block_model.sample_block(1, length - 1, rng, current=first)
        assert stepped == [int(first)] + block.tolist()

    def test_golden_seed_trajectory_is_pinned(self):
        trajectory = golden_model().sample_trajectory(40, 2024)
        assert trajectory.tolist() == GOLDEN_TRAJECTORY


class TestWearSemantics:
    def test_full_compliance_never_fails(self):
        """compliance=1 services the worker at pm_level, so wear never
        reaches fail_level and DOWN is unreachable."""
        model = DegradationAvailabilityModel(wear_rate=0.3, compliance=1.0)
        trajectory = model.sample_trajectory(20_000, 5)
        assert not (trajectory == int(DOWN)).any()
        assert (trajectory == int(RECLAIMED)).any()

    def test_zero_compliance_runs_to_failure(self):
        model = DegradationAvailabilityModel(wear_rate=0.3, compliance=0.0)
        trajectory = model.sample_trajectory(20_000, 5)
        assert (trajectory == int(DOWN)).any()
        assert not (trajectory == int(RECLAIMED)).any()

    def test_wear_resets_after_repair(self):
        model = golden_model()
        rng = as_generator(1)
        state = model.initial_state(rng)
        seen_down = False
        for _ in range(5000):
            previous = state
            state = model.next_state(state, rng)
            if previous is not UP and state is UP:
                seen_down = True
                assert model.wear == 0
        assert seen_down

    def test_markov_approximation_is_stochastic(self):
        matrix = golden_model().markov_approximation()
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
        assert ((matrix >= 0.0) & (matrix <= 1.0)).all()

    def test_markov_approximation_repair_split(self):
        """compliance=0 routes every UP exit to DOWN; compliance=1 to RECLAIMED."""
        never = DegradationAvailabilityModel(wear_rate=0.1, compliance=0.0)
        assert never.markov_approximation()[0, 1] == 0.0
        always = DegradationAvailabilityModel(wear_rate=0.1, compliance=1.0)
        assert always.markov_approximation()[0, 2] == 0.0


class TestValidationAndSojourns:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(wear_rate=0.0),
            dict(wear_rate=1.5),
            dict(wear_rate=0.1, pm_level=0),
            dict(wear_rate=0.1, pm_level=5, fail_level=5),
            dict(wear_rate=0.1, compliance=1.5),
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(InvalidModelError):
            DegradationAvailabilityModel(**kwargs)

    @pytest.mark.parametrize("kind", SOJOURN_KINDS)
    def test_sojourn_families_hit_the_requested_mean(self, kind):
        distribution = sojourn_distribution(kind, 12.0)
        assert distribution.mean() == pytest.approx(12.0, rel=0.05)

    def test_unknown_sojourn_family_raises(self):
        with pytest.raises(InvalidModelError, match="unknown sojourn"):
            sojourn_distribution("zipf", 5.0)

    def test_sub_slot_mean_raises(self):
        with pytest.raises(InvalidModelError, match="mean"):
            sojourn_distribution("geometric", 0.5)
