"""Unit tests for the platform-level hazard overlays.

The load-bearing property is the determinism contract: a hazard realisation
depends only on the master stream handed to ``reset`` — never on how the
horizon is split into prefetch windows — and ``reset`` consumes exactly one
integer, so attaching a hazard cannot perturb the worker or scheduler
streams.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidModelError, SimulationError
from repro.hazards import ChurnProcess, DomainOutageProcess
from repro.types import DOWN, UP
from repro.utils.rng import as_generator

NUM_WORKERS = 20
HORIZON = 3000


def up_matrix(horizon=HORIZON, workers=NUM_WORKERS):
    return np.full((workers, horizon), int(UP), dtype=np.int8)


def overlay_in_chunks(process, seed, chunks):
    """Apply the overlay over an all-UP matrix split into *chunks* windows."""
    assert sum(chunks) == HORIZON
    matrix = up_matrix()
    process.reset(as_generator(seed))
    start = 0
    for length in chunks:
        process.overlay(start, matrix[:, start : start + length])
        start += length
    return matrix


class TestWindowSplitInvariance:
    @pytest.mark.parametrize(
        "chunks",
        [
            (HORIZON,),
            (1,) + (499,) * 5 + (HORIZON - 1 - 499 * 5,),
            (7, 1024, 1024, HORIZON - 7 - 2048),
        ],
    )
    def test_domain_outage_realisation_is_split_invariant(self, chunks):
        reference = overlay_in_chunks(
            DomainOutageProcess(NUM_WORKERS, domains=4, rate=0.01, mean_outage=10.0),
            seed=7,
            chunks=(HORIZON,),
        )
        assert (reference == DOWN).sum() > 0, "test needs a non-trivial realisation"
        split = overlay_in_chunks(
            DomainOutageProcess(NUM_WORKERS, domains=4, rate=0.01, mean_outage=10.0),
            seed=7,
            chunks=chunks,
        )
        np.testing.assert_array_equal(reference, split)

    def test_churn_realisation_is_split_invariant(self):
        reference = overlay_in_chunks(
            ChurnProcess(NUM_WORKERS, mean_present=200.0, mean_absent=80.0),
            seed=3,
            chunks=(HORIZON,),
        )
        split = overlay_in_chunks(
            ChurnProcess(NUM_WORKERS, mean_present=200.0, mean_absent=80.0),
            seed=3,
            chunks=(1,) + (333,) * 9 + (HORIZON - 1 - 333 * 9,),
        )
        np.testing.assert_array_equal(reference, split)

    def test_reset_consumes_exactly_one_integer(self):
        """Streams drawn after reset() match streams drawn after one integer."""
        process = DomainOutageProcess(NUM_WORKERS, domains=4)
        rng_a = as_generator(42)
        process.reset(rng_a)
        rng_b = as_generator(42)
        rng_b.integers(0, 2**62)
        assert rng_a.integers(0, 2**62) == rng_b.integers(0, 2**62)


class TestStructure:
    def test_domain_membership_partitions_the_pool(self):
        process = DomainOutageProcess(NUM_WORKERS, domains=4)
        seen = np.concatenate([process.members(unit) for unit in range(process.domains)])
        assert sorted(seen.tolist()) == list(range(NUM_WORKERS))
        assert process.members(1).tolist() == list(range(1, NUM_WORKERS, 4))

    def test_domains_are_clipped_to_pool_size(self):
        process = DomainOutageProcess(3, domains=10)
        assert process.domains == 3

    def test_outage_hits_all_members_simultaneously(self):
        process = DomainOutageProcess(NUM_WORKERS, domains=2, rate=0.05, mean_outage=6.0)
        matrix = up_matrix()
        process.reset(as_generator(11))
        process.overlay(0, matrix)
        down = matrix == DOWN
        assert down.any()
        # In every slot, the DOWN set is a union of whole domains.
        members = [set(process.members(unit).tolist()) for unit in range(2)]
        for slot in np.flatnonzero(down.any(axis=0)):
            down_set = set(np.flatnonzero(down[:, slot]).tolist())
            for domain in members:
                overlap = down_set & domain
                assert overlap == set() or overlap == domain

    def test_churn_present0_one_starts_fully_enrolled(self):
        process = ChurnProcess(NUM_WORKERS, present0=1.0)
        matrix = up_matrix(horizon=1)
        process.reset(as_generator(0))
        process.overlay(0, matrix)
        assert (matrix[:, 0] == int(UP)).all()

    def test_churn_low_present0_starts_mostly_absent(self):
        process = ChurnProcess(200, present0=0.05)
        matrix = up_matrix(horizon=1, workers=200)
        process.reset(as_generator(0))
        process.overlay(0, matrix)
        assert (matrix[:, 0] == DOWN).sum() > 150


class TestContractViolations:
    def test_overlay_before_reset_raises(self):
        process = DomainOutageProcess(NUM_WORKERS)
        with pytest.raises(SimulationError, match="before reset"):
            process.overlay(0, up_matrix(horizon=10))

    def test_out_of_order_windows_raise(self):
        process = DomainOutageProcess(NUM_WORKERS)
        process.reset(as_generator(1))
        matrix = up_matrix(horizon=100)
        process.overlay(0, matrix[:, :50])
        with pytest.raises(SimulationError, match="sequential"):
            process.overlay(100, matrix[:, 50:])

    def test_wrong_pool_size_raises(self):
        process = DomainOutageProcess(NUM_WORKERS)
        process.reset(as_generator(1))
        with pytest.raises(SimulationError, match="shape"):
            process.overlay(0, up_matrix(horizon=10, workers=NUM_WORKERS + 1))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(domains=0),
            dict(rate=0.0),
            dict(rate=1.5),
            dict(mean_outage=0.5),
        ],
    )
    def test_domain_outage_validation(self, kwargs):
        with pytest.raises(InvalidModelError):
            DomainOutageProcess(NUM_WORKERS, **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mean_present=0.0),
            dict(mean_absent=0.0),
            dict(present0=0.0),
            dict(present0=1.5),
        ],
    )
    def test_churn_validation(self, kwargs):
        with pytest.raises(InvalidModelError):
            ChurnProcess(NUM_WORKERS, **kwargs)

    def test_describe_mentions_the_law(self):
        assert "domains" in DomainOutageProcess(NUM_WORKERS).describe()
        assert "churn" in ChurnProcess(NUM_WORKERS).describe()
