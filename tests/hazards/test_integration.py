"""Cross-layer determinism of the hazard substrates.

Pins the ISSUE's acceptance bar: a hazard-bearing run is bit-identical
between the solo engine, the one-pass :class:`MultiHeuristicDriver` and the
experiment layer's trace-bank replay; across the block / kernel / perslot
samplers; and the PR 7 metrics plumbing observes the overlays (pool dips
hitting whole domains in the same slot, Monte Carlo bands over a
correlated-outage campaign).
"""

import numpy as np
import pytest

from repro import api
from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.registry import model_factory_for
from repro.experiments import run_campaign_spec
from repro.experiments.metrics import aggregate_metric_bands
from repro.experiments.runner import TraceBank
from repro.experiments.scenarios import AvailabilitySpec
from repro.experiments.spec import CampaignSpec
from repro.hazards import DomainOutageProcess
from repro.platform import Platform, PlatformSpec, Processor
from repro.platform.builders import availability_platform
from repro.scheduling import create_scheduler
from repro.simulation import MultiHeuristicDriver, SimulationEngine

pytestmark = pytest.mark.slow

MAX_SLOTS = 20_000

#: (kind, parameters, pinned solo makespans for ["IE", "RANDOM", "IP"]) on
#: the 12-worker golden platform below, seed 5.
SUBSTRATES = [
    ("correlated", dict(domains=3, rate=0.005, mean_outage=12), [341, 1111, 718]),
    ("churn", dict(mean_present=300, mean_absent=120, present0=0.75), [538, 811, 589]),
    ("degradation", dict(wear_rate=0.04), [48, 164, 267]),
]

HEURISTICS = ["IE", "RANDOM", "IP"]

#: api.run golden makespans (m=8, ncom=5, wmin=1, 10 workers, 5 iterations,
#: seed 11, platform seed 3) — one per substrate family, every sampler.
API_GOLDENS = [
    ("correlated(domains=3, rate=0.01, mean_outage=10)", 323),
    ({"kind": "churn", "mean_present": 200, "mean_absent": 80, "present0": 0.7}, 579),
    ("degradation(wear_rate=0.05)", 68),
]


def hazard_platform(kind, params):
    spec = AvailabilitySpec(kind=kind, parameters=tuple(sorted(params.items())))
    return availability_platform(
        PlatformSpec(num_processors=12, ncom=6, wmin=1),
        num_tasks=6,
        seed=99,
        model_factory=model_factory_for(spec),
    )


@pytest.mark.parametrize("kind,params,golden", SUBSTRATES)
def test_solo_driver_and_bank_replay_are_bit_identical(kind, params, golden):
    platform = hazard_platform(kind, params)
    application = Application(tasks_per_iteration=6, iterations=8)
    analysis = AnalysisContext(platform)

    solo = [
        SimulationEngine(
            platform,
            application,
            create_scheduler(name),
            seed=5,
            max_slots=MAX_SLOTS,
            analysis=analysis,
            sampler="block",
        ).run()
        for name in HEURISTICS
    ]
    assert [result.makespan for result in solo] == golden

    shared = MultiHeuristicDriver(
        platform,
        application,
        [create_scheduler(name) for name in HEURISTICS],
        seed=5,
        max_slots=MAX_SLOTS,
        sampler="block",
    ).run()
    assert shared == solo

    bank = TraceBank(platform, horizon=MAX_SLOTS).trace_for(5)
    replayed = [
        SimulationEngine(
            platform,
            application,
            create_scheduler(name),
            seed=5,
            max_slots=MAX_SLOTS,
            analysis=analysis,
            trace=bank,
        ).run()
        for name in HEURISTICS
    ]
    assert replayed == solo


@pytest.mark.parametrize("availability,golden", API_GOLDENS)
def test_samplers_agree_on_every_substrate(availability, golden):
    makespans = {
        sampler: api.run(
            m=8,
            heuristic="IE",
            ncom=5,
            wmin=1,
            num_processors=10,
            iterations=5,
            seed=11,
            platform_seed=3,
            availability=availability,
            sampler=sampler,
        ).makespan
        for sampler in ("block", "kernel", "perslot")
    }
    assert makespans == {"block": golden, "kernel": golden, "perslot": golden}


class TestMetricsUnderHazards:
    def always_up_platform(self, num_workers, hazard):
        """Workers that never fail on their own: every DOWN is the overlay's."""
        stay_up = np.array([[1.0, 0.0, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        processors = [
            Processor(speed=1, capacity=4, availability=MarkovAvailabilityModel(stay_up))
            for _ in range(num_workers)
        ]
        return Platform(processors, ncom=4, tprog=3, tdata=2, hazard=hazard)

    def test_pool_dips_hit_whole_domains_in_the_same_slot(self):
        """Over an always-UP base, the collector's exact pool_down series
        only ever shows unions of whole outage domains."""
        num_workers = 10
        platform = self.always_up_platform(
            num_workers,
            DomainOutageProcess(num_workers, domains=2, rate=0.02, mean_outage=15.0),
        )
        result = api.run(
            m=4,
            heuristic="IE",
            iterations=40,
            seed=13,
            platform=platform,
            collect_metrics=True,
            metrics_stride=1,
            max_slots=MAX_SLOTS,
        )
        pool_down = result.metrics.series["pool_down"]
        observed = {int(value) for value in pool_down}
        # Domains of 5 workers each: the DOWN population is 0, one domain,
        # or both — never a partial domain.
        assert observed <= {0, 5, 10}
        assert max(observed) > 0, "expected at least one outage in the window"
        np.testing.assert_allclose(
            np.asarray(result.metrics.series["pool_up"]) + np.asarray(pool_down),
            num_workers,
        )

    def test_band_aggregation_over_a_correlated_campaign(self):
        spec = CampaignSpec(
            name="hazard-bands",
            m_values=(4,),
            ncom_values=(4,),
            wmin_values=(1,),
            num_processors_values=(8,),
            heuristics=("IE",),
            scenarios_per_cell=2,
            trials_per_scenario=2,
            iterations=5,
            makespan_cap=MAX_SLOTS,
            availability=AvailabilitySpec(
                kind="correlated",
                parameters=(("domains", 2), ("rate", 0.01), ("mean_outage", 10.0)),
            ),
            collect_metrics=True,
            metrics_stride=16,
        )
        results = run_campaign_spec(spec)
        assert len(results) == 4
        assert all(result.metrics is not None for result in results)
        bands = aggregate_metric_bands(results)
        assert len(bands) == 1
        band = bands[0]
        assert band.num_runs == 4
        for quantile, values in band.series["pool_up"].items():
            finite = [value for value in values if value == value]
            assert finite and all(0.0 <= value <= 8.0 for value in finite)

    def test_campaign_results_are_golden_seeded(self):
        """The same correlated campaign twice gives identical result rows."""
        def run_once():
            spec = CampaignSpec(
                name="hazard-pin",
                m_values=(4,),
                ncom_values=(4,),
                wmin_values=(1,),
                num_processors_values=(8,),
                heuristics=("IE", "IP"),
                scenarios_per_cell=1,
                trials_per_scenario=2,
                iterations=5,
                makespan_cap=MAX_SLOTS,
                availability=AvailabilitySpec(
                    kind="correlated",
                    parameters=(("domains", 2), ("rate", 0.01), ("mean_outage", 10.0)),
                ),
            )
            return [
                (result.heuristic, result.trial_index, result.success, result.makespan)
                for result in run_campaign_spec(spec)
            ]

        first = run_once()
        assert run_once() == first
