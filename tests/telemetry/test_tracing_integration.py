"""Tracing across the engine/allocator/runner stack.

The load-bearing guarantees: tracing *off* is the exact pre-telemetry code
path (bit-identical results), and tracing *on* produces engine-phase spans
with heuristic attribution plus the allocator/analysis memo counters that
back the roadmap's "informed cells are allocator-bound" claim.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import CampaignScale, ExperimentScenario, ScenarioParameters
from repro.experiments.runner import run_campaign_spec, run_instance
from repro.experiments.spec import CampaignSpec
from repro.telemetry import Tracer, profile_trace
from repro.telemetry.tracer import TRACE_FILE_PREFIX

pytestmark = pytest.mark.slow

SCALE = CampaignScale(
    ncom_values=(5,),
    wmin_values=(1,),
    scenarios_per_cell=1,
    trials_per_scenario=2,
    iterations=2,
    makespan_cap=20_000,
    num_processors=8,
)


def scenario():
    return ExperimentScenario(
        ScenarioParameters(m=4, ncom=5, wmin=1, num_processors=8), 0, campaign="test"
    )


def read_spans(directory):
    spans = []
    for path in sorted(directory.glob(f"{TRACE_FILE_PREFIX}*.jsonl")):
        for line in path.read_text().splitlines():
            spans.append(json.loads(line))
    return spans


def normalized(result):
    payload = result.as_dict()
    payload["wall_time_seconds"] = 0.0
    return payload


class TestBitIdentity:
    @pytest.mark.parametrize("heuristic", ["IE", "RANDOM"])
    def test_traced_run_matches_untraced(self, tmp_path, heuristic):
        plain = run_instance(scenario(), heuristic, trial=0, scale=SCALE)
        tracer = Tracer(tmp_path)
        traced = run_instance(
            scenario(), heuristic, trial=0, scale=SCALE, tracer=tracer
        )
        tracer.close()
        assert normalized(plain) == normalized(traced)
        assert read_spans(tmp_path)  # and the trace is not empty


class TestSpanContent:
    def test_engine_spans_carry_heuristic_and_run_summary(self, tmp_path):
        tracer = Tracer(tmp_path)
        result = run_instance(scenario(), "IE", trial=0, scale=SCALE, tracer=tracer)
        tracer.close()
        spans = read_spans(tmp_path)
        names = {span["name"] for span in spans}
        assert "engine.run" in names
        assert "engine.block_fetch" in names
        assert "allocate" in names
        (run_span,) = [span for span in spans if span["name"] == "engine.run"]
        assert run_span["heuristic"] == "IE"
        assert run_span["success"] == result.success
        assert run_span["slots"] == (result.makespan if result.success else SCALE.makespan_cap)
        for span in spans:
            if span["name"].startswith("engine."):
                assert span["heuristic"] == "IE"

    def test_allocate_spans_count_memo_traffic(self, tmp_path):
        tracer = Tracer(tmp_path)
        run_instance(scenario(), "IE", trial=0, scale=SCALE, tracer=tracer)
        tracer.close()
        allocates = [
            span for span in read_spans(tmp_path) if span["name"] == "allocate"
        ]
        assert allocates
        totals = {}
        for span in allocates:
            assert span["criterion"] == "E"
            for key, value in span.get("counters", {}).items():
                totals[key] = totals.get(key, 0) + value
        # Every candidate probes the computation memo exactly once.
        assert totals["candidates"] > 0
        assert totals["computation_hits"] + totals["computation_misses"] == totals["candidates"]
        assert totals["steps"] > 0

    def test_context_stamps_cell_and_trial(self, tmp_path):
        tracer = Tracer(tmp_path)
        # run_instance pushes its own cell/trial/heuristic context; an outer
        # key it does not set flows through to every span.
        with tracer.context(shard="2/4"):
            run_instance(scenario(), "IE", trial=3, scale=SCALE, tracer=tracer)
        tracer.close()
        spans = read_spans(tmp_path)
        assert spans and all(span["shard"] == "2/4" for span in spans)
        assert all(span["cell"] == scenario().label() for span in spans)
        assert all(span["trial"] == 3 for span in spans)


class TestCampaignTrace:
    def spec(self):
        return CampaignSpec.from_dict(
            {
                "name": "trace-test",
                "m_values": [4],
                "ncom_values": [5],
                "wmin_values": [1],
                "num_processors_values": [8],
                "heuristics": ["IE", "RANDOM"],
                "scenarios_per_cell": 1,
                "trials_per_scenario": 1,
                "iterations": 2,
                "makespan_cap": 20_000,
            }
        )

    def test_trace_dir_keeps_results_identical_and_profiles(self, tmp_path):
        plain = run_campaign_spec(self.spec())
        trace_dir = tmp_path / "telemetry"
        traced = run_campaign_spec(self.spec(), trace_dir=str(trace_dir))
        assert [normalized(r) for r in plain] == [normalized(r) for r in traced]

        report = profile_trace(trace_dir)
        groups = {(row.name, row.group) for row in report.rows}
        assert ("engine.run", "IE") in groups
        assert ("engine.run", "RANDOM") in groups
        assert report.counters.get("candidates", 0) > 0
        # The driver-level context stamps every engine span with its cell.
        spans = read_spans(trace_dir)
        assert all("cell" in span for span in spans if span["name"].startswith("engine."))
