"""Tracer unit tests: record shape, contexts, counters, null fast path."""

from __future__ import annotations

import json
import threading

from repro.telemetry import NullTracer, Tracer, active_tracer, shared_tracer
from repro.telemetry.tracer import TRACE_FILE_PREFIX


def read_spans(directory):
    spans = []
    for path in sorted(directory.glob(f"{TRACE_FILE_PREFIX}*.jsonl")):
        for line in path.read_text().splitlines():
            spans.append(json.loads(line))
    return spans


def test_span_context_manager_emits_one_record(tmp_path):
    tracer = Tracer(tmp_path)
    with tracer.span("phase", heuristic="IE") as span:
        span.add("candidates", 3)
        span.add("candidates", 2)
    tracer.close()
    (record,) = read_spans(tmp_path)
    assert record["name"] == "phase"
    assert record["heuristic"] == "IE"
    assert record["counters"] == {"candidates": 5}
    assert record["dur_us"] >= 0
    assert record["pid"] > 0


def test_record_from_precaptured_start(tmp_path):
    import time

    tracer = Tracer(tmp_path)
    begin = time.perf_counter_ns()
    tracer.record("fast", begin, advance=7)
    tracer.close()
    (record,) = read_spans(tmp_path)
    assert record["name"] == "fast"
    assert record["advance"] == 7


def test_event_is_zero_duration(tmp_path):
    tracer = Tracer(tmp_path)
    tracer.event("job.enqueue", job="abc")
    tracer.close()
    (record,) = read_spans(tmp_path)
    assert record["job"] == "abc"
    assert record["dur_us"] <= 1000  # emitted immediately


def test_context_attrs_merge_and_nest(tmp_path):
    tracer = Tracer(tmp_path)
    with tracer.context(cell="m5", trial=1):
        tracer.event("outer")
        with tracer.context(trial=2, heuristic="IE"):
            tracer.event("inner")
    tracer.event("outside")
    tracer.close()
    outer, inner, outside = read_spans(tmp_path)
    assert outer["cell"] == "m5" and outer["trial"] == 1
    assert inner["cell"] == "m5" and inner["trial"] == 2
    assert inner["heuristic"] == "IE"
    assert "cell" not in outside


def test_span_attrs_shadow_context(tmp_path):
    tracer = Tracer(tmp_path)
    with tracer.context(heuristic="outer"):
        tracer.event("e", heuristic="inner")
    tracer.close()
    (record,) = read_spans(tmp_path)
    assert record["heuristic"] == "inner"


def test_run_id_stamped_on_every_record(tmp_path):
    tracer = Tracer(tmp_path, run_id="r42")
    tracer.event("a")
    tracer.event("b")
    tracer.close()
    assert all(record["run"] == "r42" for record in read_spans(tmp_path))


def test_span_emitted_even_on_exception(tmp_path):
    tracer = Tracer(tmp_path)
    try:
        with tracer.span("boom"):
            raise ValueError("x")
    except ValueError:
        pass
    tracer.close()
    assert read_spans(tmp_path)[0]["name"] == "boom"


def test_concurrent_threads_produce_valid_lines(tmp_path):
    tracer = Tracer(tmp_path)

    def work(index):
        with tracer.context(thread=index):
            for _ in range(50):
                tracer.event("tick")

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    tracer.close()
    spans = read_spans(tmp_path)  # json.loads raises on any torn line
    assert len(spans) == 200


def test_null_tracer_is_inert_and_normalised(tmp_path):
    null = NullTracer()
    with null.span("x") as span:
        span.add("c")
    null.record("y", 0)
    null.event("z")
    with null.context(cell="a"):
        pass
    null.flush()
    null.close()
    assert active_tracer(None) is None
    assert active_tracer(null) is None
    real = Tracer(tmp_path)
    assert active_tracer(real) is real
    real.close()


def test_accumulate_merges_occurrences_into_one_record(tmp_path):
    import time

    tracer = Tracer(tmp_path)
    for advance in (3, 4):
        begin = time.perf_counter_ns()
        tracer.accumulate(
            "engine.comm_phase", begin, counters={"advance": advance}, heuristic="IE"
        )
    tracer.flush_accumulated()
    tracer.close()
    (record,) = read_spans(tmp_path)
    assert record["name"] == "engine.comm_phase"
    assert record["heuristic"] == "IE"
    assert record["counters"]["calls"] == 2
    assert record["counters"]["advance"] == 7
    assert record["dur_us"] >= 0


def test_accumulate_splits_on_attrs_and_flushes_on_close(tmp_path):
    import time

    tracer = Tracer(tmp_path)
    begin = time.perf_counter_ns()
    tracer.accumulate("allocate", begin, criterion="E")
    tracer.accumulate("allocate", begin, criterion="Y")
    tracer.close()  # close() drains the calling thread's pending buffer
    spans = read_spans(tmp_path)
    assert {span["criterion"] for span in spans} == {"E", "Y"}
    assert all(span["counters"]["calls"] == 1 for span in spans)


def test_flush_accumulated_applies_context_at_flush_time(tmp_path):
    import time

    tracer = Tracer(tmp_path)
    with tracer.context(cell="m5"):
        tracer.accumulate("phase", time.perf_counter_ns())
        tracer.flush_accumulated()
    tracer.close()
    (record,) = read_spans(tmp_path)
    assert record["cell"] == "m5"


def test_shared_tracer_is_one_instance_per_directory(tmp_path):
    first = shared_tracer(tmp_path / "a")
    second = shared_tracer(tmp_path / "a")
    other = shared_tracer(tmp_path / "b")
    assert first is second
    assert other is not first


def test_close_then_reuse_reopens(tmp_path):
    tracer = Tracer(tmp_path)
    tracer.event("one")
    tracer.close()
    tracer.event("two")
    tracer.close()
    assert [record["name"] for record in read_spans(tmp_path)] == ["one", "two"]
