"""Prometheus text-format conformance of the metrics primitives."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    process_rss_bytes,
)


def test_counter_accumulates_per_label_set():
    counter = Counter("requests_total", "Requests.")
    counter.inc(method="GET", route="/")
    counter.inc(2, method="GET", route="/")
    counter.inc(method="POST", route="/")
    assert counter.value(method="GET", route="/") == 3
    assert counter.value(method="POST", route="/") == 1
    assert counter.value(method="PUT", route="/") == 0


def test_counter_rejects_negative_increment():
    counter = Counter("c", "h")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge("depth", "Depth.")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 4
    gauge.set(1, status="queued")
    assert gauge.value(status="queued") == 1


def test_histogram_cumulative_buckets_and_sum():
    histogram = Histogram("lat", "Latency.", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    lines = histogram.render()
    assert 'lat_bucket{le="0.1"} 1' in lines
    assert 'lat_bucket{le="1"} 2' in lines
    assert 'lat_bucket{le="+Inf"} 3' in lines
    assert "lat_count 3" in lines
    assert histogram.count() == 3


def test_registry_render_is_deterministic_and_typed():
    registry = MetricsRegistry()
    registry.gauge("z_gauge", "Last.").set(1)
    registry.counter("a_counter", "First.").inc()
    text = registry.render()
    assert text.index("a_counter") < text.index("z_gauge")
    assert "# HELP a_counter First." in text
    assert "# TYPE a_counter counter" in text
    assert "# TYPE z_gauge gauge" in text
    assert text.endswith("\n")
    assert registry.render() == text


def test_registry_get_or_create_and_type_conflict():
    registry = MetricsRegistry()
    first = registry.counter("c", "h")
    assert registry.counter("c", "h") is first
    with pytest.raises(ValueError):
        registry.gauge("c", "h")


def test_label_values_are_escaped():
    counter = Counter("c", "h")
    counter.inc(route='a"b\\c\nd')
    (line,) = counter.render()
    assert '\\"' in line and "\\\\" in line and "\\n" in line


def test_samples_sorted_by_label_values():
    gauge = Gauge("jobs", "Jobs.")
    gauge.set(1, status="running")
    gauge.set(2, status="completed")
    gauge.set(3, status="failed")
    lines = gauge.render()
    statuses = [line.split('"')[1] for line in lines]
    assert statuses == sorted(statuses)


def test_process_rss_bytes_reports_positive():
    rss = process_rss_bytes()
    assert rss is None or rss > 1024 * 1024  # any real interpreter is >1 MiB
