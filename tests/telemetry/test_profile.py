"""Profile aggregation: loading, grouping, shares, memo counters, rendering."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.telemetry import (
    Tracer,
    aggregate_spans,
    format_profile,
    load_spans,
    profile_trace,
    render_profile_html,
)


def make_spans():
    return [
        {"name": "engine.run", "ts": 10.0, "dur_us": 1000.0, "heuristic": "IE"},
        {"name": "allocate", "ts": 10.1, "dur_us": 600.0, "criterion": "E",
         "counters": {"computation_hits": 8, "computation_misses": 2}},
        {"name": "allocate", "ts": 10.2, "dur_us": 200.0, "criterion": "E",
         "counters": {"computation_hits": 2, "computation_misses": 3}},
        {"name": "engine.fast_forward", "ts": 10.5, "dur_us": 200.0, "heuristic": "IE"},
    ]


def test_aggregate_groups_and_sorts_by_total_time():
    report = aggregate_spans(make_spans(), source="test", files=1)
    assert report.total_spans == 4
    assert [(row.name, row.group, row.count) for row in report.rows] == [
        ("engine.run", "IE", 1),
        ("allocate", "criterion=E", 2),
        ("engine.fast_forward", "IE", 1),
    ]
    assert report.wall_seconds == pytest.approx(0.5)


def test_container_spans_excluded_from_share():
    report = aggregate_spans(make_spans())
    by_name = {row.name: row for row in report.rows}
    assert report.share(by_name["engine.run"]) is None
    assert report.leaf_total_us == pytest.approx(1000.0)
    assert report.share(by_name["allocate"]) == pytest.approx(0.8)
    assert report.share(by_name["engine.fast_forward"]) == pytest.approx(0.2)


def test_counters_summed_globally():
    report = aggregate_spans(make_spans())
    assert report.counters == {"computation_hits": 10, "computation_misses": 5}


def test_profile_trace_accepts_file_dir_and_store(tmp_path):
    trace_dir = tmp_path / "store" / "telemetry"
    tracer = Tracer(trace_dir)
    tracer.event("a")
    tracer.close()
    (span_file,) = trace_dir.glob("spans-*.jsonl")
    for target in (span_file, trace_dir, tmp_path / "store"):
        report = profile_trace(target)
        assert report.total_spans == 1


def test_load_spans_skips_blank_lines(tmp_path):
    path = tmp_path / "spans-1.jsonl"
    path.write_text(json.dumps({"name": "a", "dur_us": 1.0}) + "\n\n")
    assert len(load_spans(path)) == 1


def test_missing_trace_path_raises(tmp_path):
    with pytest.raises(ReproError, match="does not exist"):
        profile_trace(tmp_path / "nope")
    (tmp_path / "empty").mkdir()
    with pytest.raises(ReproError, match="no spans-"):
        profile_trace(tmp_path / "empty")


def test_format_profile_text_includes_memo_and_shares():
    text = format_profile(aggregate_spans(make_spans(), source="src"))
    assert "Trace: src" in text
    assert "allocate" in text and "criterion=E" in text
    assert "80.0%" in text
    assert "computation memo hit rate" in text
    assert "66.7%" in text  # 10 hits / 15 probes


def test_render_profile_html_is_self_contained():
    html = render_profile_html(aggregate_spans(make_spans(), source="s<rc"))
    assert html.startswith("<!DOCTYPE html>")
    assert "s&lt;rc" in html  # source is escaped
    assert "Per-phase breakdown" in html
    assert "memo counters" in html


def test_empty_report_renders():
    report = aggregate_spans([], source="empty")
    assert "(no spans recorded)" in format_profile(report)
    assert "no spans recorded" in render_profile_html(report)
