"""Tests for the passive heuristics IP / IE / IY / IAY."""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application, Configuration
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling.base import Observation
from repro.scheduling.passive import make_passive_heuristic
from repro.types import DOWN, RECLAIMED, UP


def make_platform():
    stays = [(0.98, 0.95, 0.9), (0.95, 0.9, 0.9), (0.92, 0.9, 0.9), (0.96, 0.93, 0.9)]
    speeds = [1, 2, 3, 2]
    processors = [
        Processor(
            speed=speed,
            capacity=5,
            availability=MarkovAvailabilityModel(paper_transition_matrix(list(stay))),
        )
        for stay, speed in zip(stays, speeds)
    ]
    return Platform(processors, ncom=2, tprog=2, tdata=1)


def make_observation(states, current=None, **kwargs):
    return Observation(
        slot=kwargs.get("slot", 0),
        states=np.array(states, dtype=np.int8),
        current_configuration=current or Configuration.empty(),
        iteration_index=kwargs.get("iteration_index", 0),
        iteration_elapsed=kwargs.get("elapsed", 0),
        progress=kwargs.get("progress", 0),
        failure=kwargs.get("failure", False),
        new_iteration=kwargs.get("new_iteration", False),
        has_program=frozenset(kwargs.get("has_program", ())),
        data_received=kwargs.get("data_received", {}),
        comm_remaining=kwargs.get("comm_remaining", {}),
    )


@pytest.fixture
def platform():
    return make_platform()


def bind(scheduler, platform, m=5):
    application = Application(tasks_per_iteration=m, iterations=3)
    scheduler.bind(platform, application, AnalysisContext(platform), np.random.default_rng(0))
    return scheduler


class TestMakePassiveHeuristic:
    @pytest.mark.parametrize("name,criterion", [("IP", "P"), ("IE", "E"), ("IY", "Y"), ("IAY", "AY")])
    def test_names_and_criteria(self, name, criterion):
        scheduler = make_passive_heuristic(name)
        assert scheduler.name == name
        assert scheduler.criterion.name == criterion

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_passive_heuristic("IZ")


class TestPassiveBehaviour:
    def test_builds_full_configuration_at_iteration_start(self, platform):
        scheduler = bind(make_passive_heuristic("IE"), platform)
        observation = make_observation([UP, UP, UP, UP], new_iteration=True)
        config = scheduler.select(observation)
        assert config.total_tasks() == 5
        config.validate(platform, 5)

    def test_keeps_configuration_mid_iteration(self, platform):
        scheduler = bind(make_passive_heuristic("IE"), platform)
        current = Configuration({0: 3, 1: 2})
        observation = make_observation(
            [UP, UP, UP, UP], current=current, new_iteration=False, progress=2,
        )
        assert scheduler.select(observation) == current

    def test_keeps_configuration_even_if_better_workers_appear(self, platform):
        """Passive heuristics never reconfigure spontaneously (Section VI-A)."""
        scheduler = bind(make_passive_heuristic("IE"), platform)
        # Current configuration deliberately uses only the slowest workers.
        current = Configuration({2: 3, 3: 2})
        observation = make_observation(
            [UP, UP, UP, UP], current=current, new_iteration=False,
        )
        assert scheduler.select(observation) == current

    def test_rebuilds_after_failure_excluding_down_worker(self, platform):
        scheduler = bind(make_passive_heuristic("IE"), platform)
        observation = make_observation(
            [UP, UP, UP, DOWN], current=Configuration({0: 3, 1: 2}), failure=True,
        )
        config = scheduler.select(observation)
        assert config.total_tasks() == 5
        assert 3 not in config.workers

    def test_rebuilds_when_current_configuration_empty(self, platform):
        scheduler = bind(make_passive_heuristic("IAY"), platform)
        observation = make_observation([UP, UP, RECLAIMED, UP], new_iteration=False)
        config = scheduler.select(observation)
        assert config.total_tasks() == 5
        assert 2 not in config.workers  # RECLAIMED workers cannot be newly enrolled

    def test_returns_empty_when_no_feasible_configuration(self, platform):
        scheduler = bind(make_passive_heuristic("IP"), platform, m=5)
        observation = make_observation([DOWN, DOWN, DOWN, DOWN], new_iteration=True)
        assert scheduler.select(observation).is_empty()

    def test_ie_prefers_fast_reliable_workers(self, platform):
        scheduler = bind(make_passive_heuristic("IE"), platform, m=2)
        observation = make_observation([UP, UP, UP, UP], new_iteration=True)
        config = scheduler.select(observation)
        # Worker 0 is both the fastest and the most reliable: it must be used.
        assert 0 in config.workers

    def test_build_candidate_ignores_received_data(self, platform):
        scheduler = bind(make_passive_heuristic("IE"), platform, m=3)
        observation = make_observation(
            [UP, UP, UP, UP],
            current=Configuration({2: 3}),
            data_received={2: 3},
            new_iteration=False,
        )
        candidate = scheduler.build_candidate(observation)
        fresh = scheduler.build_configuration(
            make_observation([UP, UP, UP, UP], new_iteration=True)
        )
        # The candidate is computed "from scratch": reusable data on worker 2
        # must not make the candidate gravitate towards worker 2.
        assert candidate == fresh

    def test_requires_binding(self, platform):
        scheduler = make_passive_heuristic("IE")
        with pytest.raises(RuntimeError):
            scheduler.select(make_observation([UP, UP, UP, UP]))


class TestPassiveDifferences:
    def test_the_four_heuristics_are_genuinely_different(self):
        """Across random paper-style platforms the four criteria disagree sometimes."""
        from repro.platform import PlatformSpec, paper_platform

        names = ["IP", "IE", "IY", "IAY"]
        distinct_choices = 0
        for seed in range(8):
            platform = paper_platform(
                PlatformSpec(num_processors=8, ncom=4, wmin=2), num_tasks=5, seed=seed
            )
            observation = make_observation([UP] * 8, new_iteration=True)
            configs = set()
            for name in names:
                scheduler = bind(make_passive_heuristic(name), platform)
                configs.add(scheduler.select(observation))
            if len(configs) > 1:
                distinct_choices += 1
        assert distinct_choices >= 2
