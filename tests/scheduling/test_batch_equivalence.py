"""Differential tests: the batched analysis path vs the scalar path.

The heuristics route their hot loops through the batched evaluation layer
(`IncrementalAllocator(batched=True)`, `AnalysisContext.evaluate_batch`);
the pre-batching per-candidate code is kept as `batched=False`.  Fixed seed
⇒ the two paths must select *identical* configurations and produce
*identical* simulation results — not approximately equal ones.  These tests
pin that guarantee at three levels: single allocations, per-slot proactive
decisions, and whole simulated runs.
"""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext, EvaluationRequest
from repro.analysis.criteria import PROACTIVE_CRITERIA, get_criterion
from repro.application import Application, Configuration
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling.allocation import IncrementalAllocator
from repro.scheduling.passive import PASSIVE_CRITERION_BY_NAME, make_passive_heuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.simulation import SimulationEngine


def make_platform(num_processors=12, ncom=4, wmin=2, seed=29, num_tasks=6):
    return paper_platform(
        PlatformSpec(num_processors=num_processors, ncom=ncom, wmin=wmin),
        num_tasks=num_tasks,
        seed=seed,
    )


class TestAllocatorEquivalence:
    @pytest.mark.parametrize("criterion_name", ["P", "E", "Y", "AY"])
    def test_identical_allocations_under_random_observations(self, criterion_name):
        platform = make_platform()
        scalar_context = AnalysisContext(platform)
        batched_context = AnalysisContext(platform)
        criterion = get_criterion(criterion_name)
        scalar = IncrementalAllocator(
            criterion, scalar_context, platform, num_tasks=6, batched=False
        )
        batched = IncrementalAllocator(
            criterion, batched_context, platform, num_tasks=6, batched=True
        )
        rng = np.random.default_rng(123)
        for trial in range(40):
            up = sorted(
                int(w)
                for w in rng.choice(12, size=int(rng.integers(3, 13)), replace=False)
            )
            program = [int(w) for w in up if rng.random() < 0.4]
            if rng.random() < 0.5:
                received = {
                    int(w): int(rng.integers(1, 3)) for w in up if rng.random() < 0.3
                }
            else:
                received = None
            elapsed = int(rng.integers(0, 50))
            reference = scalar.allocate(
                up, has_program=program, received_data=received, elapsed=elapsed
            )
            candidate = batched.allocate(
                up, has_program=program, received_data=received, elapsed=elapsed
            )
            assert reference == candidate, (
                f"trial {trial}: scalar {reference} != batched {candidate} "
                f"(criterion {criterion_name}, up={up})"
            )

    def test_infeasible_allocations_agree(self):
        platform = make_platform()
        context = AnalysisContext(platform)
        scalar = IncrementalAllocator(
            get_criterion("E"), context, platform, num_tasks=6, batched=False
        )
        batched = IncrementalAllocator(
            get_criterion("E"), context, platform, num_tasks=6, batched=True
        )
        assert scalar.allocate([]) is None is batched.allocate([])
        # One worker cannot hold six tasks on a capacity-1 platform cell.
        capacities = sum(platform.processor(q).capacity for q in range(1))
        if capacities < 6:
            assert scalar.allocate([0]) is None is batched.allocate([0])


class TestEvaluateBatchEquivalence:
    def test_matches_scalar_evaluate(self):
        platform = make_platform()
        scalar_context = AnalysisContext(platform)
        batched_context = AnalysisContext(platform)
        configurations = [
            Configuration({0: 2, 3: 1, 5: 3}),
            Configuration({1: 1}),
            Configuration.empty(),
        ]
        requests = [
            EvaluationRequest(
                configurations[0], has_program=[0, 5], elapsed=4
            ),
            EvaluationRequest(
                configurations[1],
                comm_slots={1: 7},
                completed_work=1,
                elapsed=9,
            ),
            EvaluationRequest(configurations[2]),
        ]
        batch = batched_context.evaluate_batch(requests)
        singles = [
            scalar_context.evaluate(
                configurations[0], has_program=[0, 5], elapsed=4
            ),
            scalar_context.evaluate(
                configurations[1], comm_slots={1: 7}, completed_work=1, elapsed=9
            ),
            scalar_context.evaluate(configurations[2]),
        ]
        for one, many in zip(singles, batch):
            assert one.success_probability == many.success_probability
            assert one.expected_time == many.expected_time
            assert one.yield_value == many.yield_value
            assert one.workload == many.workload
            assert one.elapsed == many.elapsed

    def test_memoisation_keyed_on_set_and_workload(self):
        platform = make_platform()
        context = AnalysisContext(platform)
        configuration = Configuration({0: 2, 3: 1})
        context.evaluate_batch([EvaluationRequest(configuration)])
        stats = context.cache_stats()
        assert stats["computation_keys"] == 1
        # Same set, same workload: no new key.  Different remaining workload
        # (progress made): one new key.
        context.evaluate_batch(
            [EvaluationRequest(configuration, completed_work=1)]
        )
        assert context.cache_stats()["computation_keys"] == 2


def run_simulation(heuristic_factory, *, batched, seed, max_slots=4000):
    platform = make_platform(num_processors=10, ncom=3, wmin=1, seed=31, num_tasks=4)
    application = Application(tasks_per_iteration=4, iterations=12)
    analysis = AnalysisContext(platform)
    scheduler = heuristic_factory(batched)
    engine = SimulationEngine(
        platform,
        application,
        scheduler,
        seed=seed,
        max_slots=max_slots,
        analysis=analysis,
    )
    return engine.run()


def passive_factory(name):
    return lambda batched: make_passive_heuristic(name, batched=batched)


def proactive_factory(criterion_name, passive_name):
    def build(batched):
        return ProactiveHeuristic(
            get_criterion(criterion_name),
            make_passive_heuristic(passive_name, batched=batched),
        )

    return build


class TestSimulationEquivalence:
    @pytest.mark.parametrize("name", sorted(PASSIVE_CRITERION_BY_NAME))
    def test_passive_runs_identical(self, name):
        for seed in (1, 7):
            reference = run_simulation(passive_factory(name), batched=False, seed=seed)
            candidate = run_simulation(passive_factory(name), batched=True, seed=seed)
            assert reference == candidate

    @pytest.mark.parametrize("criterion_name", PROACTIVE_CRITERIA)
    def test_proactive_runs_identical(self, criterion_name):
        for passive_name in ("IE", "IY"):
            reference = run_simulation(
                proactive_factory(criterion_name, passive_name), batched=False, seed=5
            )
            candidate = run_simulation(
                proactive_factory(criterion_name, passive_name), batched=True, seed=5
            )
            assert reference == candidate

    def test_batched_is_the_default(self):
        scheduler = make_passive_heuristic("IE")
        assert scheduler.batched is True
        platform = make_platform()
        analysis = AnalysisContext(platform)
        scheduler.bind(platform, Application(tasks_per_iteration=4, iterations=1),
                       analysis, np.random.default_rng(0))
        assert scheduler._allocator.batched is True
