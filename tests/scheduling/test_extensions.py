"""Tests for the extension heuristics (FAST, THRESHOLD-IE, STICKY)."""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application, Configuration
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling import create_scheduler
from repro.scheduling.base import Observation
from repro.scheduling.extensions import (
    EXTENSION_HEURISTICS,
    FastestWorkersScheduler,
    StickyScheduler,
    ThresholdScheduler,
)
from repro.types import DOWN, UP


def make_platform():
    # Worker 0: fast but very unreliable; workers 1-3: slower but dependable.
    stays = [(0.75, 0.9, 0.9), (0.97, 0.9, 0.9), (0.96, 0.9, 0.9), (0.98, 0.9, 0.9)]
    speeds = [1, 2, 3, 4]
    processors = [
        Processor(
            speed=speed, capacity=3,
            availability=MarkovAvailabilityModel(paper_transition_matrix(list(stay))),
        )
        for stay, speed in zip(stays, speeds)
    ]
    return Platform(processors, ncom=2, tprog=2, tdata=1)


def make_observation(states, current=None, **kwargs):
    return Observation(
        slot=kwargs.get("slot", 0),
        states=np.array(states, dtype=np.int8),
        current_configuration=current or Configuration.empty(),
        iteration_index=0,
        iteration_elapsed=kwargs.get("elapsed", 0),
        progress=kwargs.get("progress", 0),
        failure=kwargs.get("failure", False),
        new_iteration=kwargs.get("new_iteration", True),
        has_program=frozenset(kwargs.get("has_program", ())),
        data_received=kwargs.get("data_received", {}),
        comm_remaining=kwargs.get("comm_remaining", {}),
    )


def bind(scheduler, platform, m=3):
    application = Application(tasks_per_iteration=m, iterations=2)
    scheduler.bind(platform, application, AnalysisContext(platform), np.random.default_rng(0))
    return scheduler


class TestRegistry:
    @pytest.mark.parametrize("name", EXTENSION_HEURISTICS)
    def test_create_by_name(self, name):
        scheduler = create_scheduler(name)
        assert scheduler.name == name

    def test_not_in_paper_set(self):
        from repro.scheduling import ALL_HEURISTICS

        assert not set(EXTENSION_HEURISTICS) & set(ALL_HEURISTICS)


class TestFastestWorkers:
    def test_picks_fastest_up_workers(self):
        platform = make_platform()
        scheduler = bind(FastestWorkersScheduler(), platform, m=2)
        config = scheduler.select(make_observation([UP, UP, UP, UP]))
        assert config.total_tasks() == 2
        assert set(config.workers) == {0, 1}  # the two smallest w_q

    def test_spills_over_when_few_workers(self):
        platform = make_platform()
        scheduler = bind(FastestWorkersScheduler(), platform, m=3)
        config = scheduler.select(make_observation([UP, DOWN, DOWN, DOWN]))
        assert config.tasks_on(0) == 3

    def test_empty_when_infeasible(self):
        platform = make_platform()
        scheduler = bind(FastestWorkersScheduler(), platform, m=3)
        config = scheduler.select(make_observation([DOWN, DOWN, DOWN, DOWN]))
        assert config.is_empty()

    def test_keeps_current_configuration(self):
        platform = make_platform()
        scheduler = bind(FastestWorkersScheduler(), platform, m=2)
        current = Configuration({2: 2})
        observation = make_observation([UP, UP, UP, UP], current=current, new_iteration=False)
        assert scheduler.select(observation) == current


class TestThreshold:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdScheduler(threshold=1.5)

    def test_excludes_low_availability_workers(self):
        platform = make_platform()
        scheduler = bind(ThresholdScheduler(threshold=0.4), platform, m=2)
        config = scheduler.select(make_observation([UP, UP, UP, UP]))
        # Worker 0's long-run availability is well below the threshold.
        assert 0 not in config.workers
        assert config.total_tasks() == 2

    def test_falls_back_when_filter_too_aggressive(self):
        platform = make_platform()
        scheduler = bind(ThresholdScheduler(threshold=0.99), platform, m=2)
        config = scheduler.select(make_observation([UP, DOWN, DOWN, DOWN]))
        # Nobody passes the filter, but worker 0 alone can host both tasks.
        assert config.tasks_on(0) == 2


class TestSticky:
    def test_builds_and_keeps(self):
        platform = make_platform()
        scheduler = bind(StickyScheduler(), platform, m=2)
        first = scheduler.select(make_observation([UP, UP, UP, UP]))
        assert first.total_tasks() == 2
        later = scheduler.select(
            make_observation([UP, UP, UP, UP], current=first, new_iteration=False)
        )
        assert later == first

    def test_end_to_end_simulation(self):
        from repro.simulation import simulate

        platform = make_platform()
        application = Application(tasks_per_iteration=3, iterations=3)
        for name in EXTENSION_HEURISTICS:
            result = simulate(platform, application, create_scheduler(name), seed=3,
                              max_slots=30_000)
            assert result.completed_iterations >= 1


class TestExtensionInCampaign:
    @pytest.mark.slow
    def test_extensions_can_join_a_campaign(self):
        from repro.experiments import CampaignScale, run_campaign, summarize_results

        campaign = run_campaign(
            3,
            heuristics=("IE", "FAST", "STICKY"),
            scale=CampaignScale.smoke(),
            label="extension-campaign",
        )
        summaries = summarize_results(campaign.results)
        assert {s.heuristic for s in summaries} == {"IE", "FAST", "STICKY"}
