"""Tests for the incremental greedy allocator.

Besides behavioural tests, the key test here cross-checks the allocator's
fast-path criterion computation against the reference implementation in
:mod:`repro.analysis.evaluation` (they must rank candidates identically).
"""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.analysis.criteria import get_criterion
from repro.analysis.evaluation import evaluate_configuration
from repro.application import Configuration
from repro.availability.generators import paper_transition_matrix, random_markov_models
from repro.availability.markov import MarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling.allocation import IncrementalAllocator


def make_platform(stays, speeds, capacities=None, ncom=2, tprog=3, tdata=1):
    capacities = capacities or [5] * len(stays)
    processors = [
        Processor(
            speed=speed,
            capacity=capacity,
            availability=MarkovAvailabilityModel(paper_transition_matrix(list(stay))),
        )
        for stay, speed, capacity in zip(stays, speeds, capacities)
    ]
    return Platform(processors, ncom=ncom, tprog=tprog, tdata=tdata)


@pytest.fixture
def platform():
    stays = [(0.98, 0.95, 0.9), (0.95, 0.9, 0.9), (0.91, 0.9, 0.9), (0.97, 0.9, 0.95)]
    return make_platform(stays, speeds=[2, 1, 1, 4])


@pytest.fixture
def context(platform):
    return AnalysisContext(platform)


class TestAllocateBasics:
    def test_allocates_exactly_m_tasks(self, platform, context):
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=5)
        config = allocator.allocate([0, 1, 2, 3])
        assert config is not None
        assert config.total_tasks() == 5
        config.validate(platform, 5)

    def test_no_up_workers(self, platform, context):
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=3)
        assert allocator.allocate([]) is None

    def test_insufficient_capacity(self, platform, context):
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=20)
        assert allocator.allocate([0, 1]) is None

    def test_respects_capacity_bounds(self):
        stays = [(0.95, 0.9, 0.9), (0.95, 0.9, 0.9)]
        platform = make_platform(stays, speeds=[1, 10], capacities=[2, 5])
        context = AnalysisContext(platform)
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=4)
        config = allocator.allocate([0, 1])
        assert config.tasks_on(0) <= 2

    def test_only_up_workers_used(self, platform, context):
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=2)
        config = allocator.allocate([1, 2])
        assert set(config.workers).issubset({1, 2})

    def test_invalid_num_tasks(self, platform, context):
        with pytest.raises(ValueError):
            IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=0)


class TestHeuristicBehaviour:
    def test_ie_prefers_fast_workers(self):
        # Two perfectly reliable workers, one fast and one slow: IE must place
        # every task where the expected completion time stays lowest.
        stays = [(0.99, 0.99, 0.99), (0.99, 0.99, 0.99)]
        platform = make_platform(stays, speeds=[1, 10], tprog=0, tdata=0)
        context = AnalysisContext(platform)
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=3)
        config = allocator.allocate([0, 1])
        assert config.tasks_on(0) == 3
        assert config.tasks_on(1) == 0

    def test_ip_prefers_reliable_workers(self):
        # Same speed, very different reliability: IP must avoid the flaky worker.
        stays = [(0.999, 0.9, 0.9), (0.80, 0.9, 0.9)]
        platform = make_platform(stays, speeds=[2, 2], tprog=0, tdata=0)
        context = AnalysisContext(platform)
        allocator = IncrementalAllocator(get_criterion("P"), context, platform, num_tasks=2)
        config = allocator.allocate([0, 1])
        assert config.tasks_on(0) == 2

    def test_yield_accounts_for_both_speed_and_reliability(self):
        # With equal reliability, the yield criterion behaves like IE and
        # prefers the faster worker...
        equal_reliability = make_platform(
            [(0.97, 0.9, 0.9), (0.97, 0.9, 0.9)], speeds=[1, 6], tprog=0, tdata=0
        )
        context = AnalysisContext(equal_reliability)
        config = IncrementalAllocator(get_criterion("Y"), context, equal_reliability, 3).allocate([0, 1])
        assert config.tasks_on(0) == 3
        # ... and with equal speeds it prefers the reliable worker (this is
        # the speed/reliability trade-off the paper motivates the yield with).
        equal_speed = make_platform(
            [(0.999, 0.95, 0.9), (0.82, 0.9, 0.9)], speeds=[4, 4], tprog=0, tdata=0
        )
        context = AnalysisContext(equal_speed)
        config = IncrementalAllocator(get_criterion("Y"), context, equal_speed, 1).allocate([0, 1])
        assert config.tasks_on(0) == 1

    def test_program_possession_biases_selection(self):
        # With a large program transfer, a worker that already holds the
        # program should be preferred by IE, all else being equal.
        stays = [(0.95, 0.9, 0.9), (0.95, 0.9, 0.9)]
        platform = make_platform(stays, speeds=[2, 2], tprog=20, tdata=1, ncom=1)
        context = AnalysisContext(platform)
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=1)
        config = allocator.allocate([0, 1], has_program=[1])
        assert config.tasks_on(1) == 1

    def test_received_data_is_reused(self):
        stays = [(0.95, 0.9, 0.9), (0.95, 0.9, 0.9)]
        platform = make_platform(stays, speeds=[2, 2], tprog=0, tdata=5, ncom=1)
        context = AnalysisContext(platform)
        allocator = IncrementalAllocator(get_criterion("E"), context, platform, num_tasks=2)
        config = allocator.allocate([0, 1], received_data={1: 2})
        # Worker 1 already has the data of two tasks: placing both tasks there
        # costs no communication at all.
        assert config.tasks_on(1) == 2


class TestFastPathMatchesReference:
    @pytest.mark.parametrize("criterion_name", ["P", "E", "Y", "AY"])
    def test_greedy_choice_matches_reference_evaluation(self, criterion_name):
        """The fast-path value used by the allocator equals the reference estimate."""
        models = random_markov_models(5, seed=17)
        rng = np.random.default_rng(3)
        processors = [
            Processor(speed=int(rng.integers(1, 8)), capacity=4, availability=model)
            for model in models
        ]
        platform = Platform(processors, ncom=2, tprog=4, tdata=2)
        context = AnalysisContext(platform)
        criterion = get_criterion(criterion_name)
        allocator = IncrementalAllocator(criterion, context, platform, num_tasks=4)
        has_program = [1, 3]
        elapsed = 7

        config = allocator.allocate(range(5), has_program=has_program, elapsed=elapsed)
        assert config is not None

        # Re-run the greedy construction with the reference evaluation and
        # check that it produces the same configuration.
        reference = Configuration.empty()
        for _ in range(4):
            best, best_value = None, criterion.worst()
            for worker in range(5):
                if reference.tasks_on(worker) >= 4:
                    continue
                candidate = reference.with_task_added(worker)
                estimate = evaluate_configuration(
                    context.group, platform, candidate,
                    has_program=has_program, elapsed=elapsed,
                )
                value = criterion.value(estimate)
                if best is None or criterion.better(value, best_value):
                    best, best_value = worker, value
            reference = reference.with_task_added(best)
        assert config == reference
