"""Tests for the RANDOM baseline scheduler."""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application, Configuration
from repro.platform import uniform_platform
from repro.scheduling.base import Observation
from repro.scheduling.random_heuristic import RandomScheduler
from repro.types import DOWN, RECLAIMED, UP


def make_observation(states, current=None, failure=False, new_iteration=True, **kwargs):
    return Observation(
        slot=kwargs.get("slot", 0),
        states=np.array(states, dtype=np.int8),
        current_configuration=current or Configuration.empty(),
        iteration_index=0,
        iteration_elapsed=kwargs.get("elapsed", 0),
        progress=kwargs.get("progress", 0),
        failure=failure,
        new_iteration=new_iteration,
        has_program=frozenset(kwargs.get("has_program", ())),
        data_received=kwargs.get("data_received", {}),
        comm_remaining=kwargs.get("comm_remaining", {}),
    )


@pytest.fixture
def bound_scheduler():
    platform = uniform_platform(4, speed=1, capacity=2, tprog=0, tdata=0)
    application = Application(tasks_per_iteration=3, iterations=1)
    scheduler = RandomScheduler()
    scheduler.bind(platform, application, AnalysisContext(platform), np.random.default_rng(0))
    return scheduler


class TestRandomScheduler:
    def test_builds_valid_configuration(self, bound_scheduler):
        observation = make_observation([UP, UP, UP, UP])
        config = bound_scheduler.select(observation)
        assert config.total_tasks() == 3
        config.validate(bound_scheduler.platform, 3)

    def test_only_up_workers_enrolled(self, bound_scheduler):
        observation = make_observation([UP, DOWN, RECLAIMED, UP])
        config = bound_scheduler.select(observation)
        assert set(config.workers).issubset({0, 3})

    def test_returns_empty_when_infeasible(self, bound_scheduler):
        # Only one UP worker with capacity 2 < 3 tasks.
        observation = make_observation([UP, DOWN, DOWN, DOWN])
        config = bound_scheduler.select(observation)
        assert config.is_empty()

    def test_keeps_configuration_mid_iteration(self, bound_scheduler):
        current = Configuration({0: 2, 3: 1})
        observation = make_observation(
            [UP, UP, UP, UP], current=current, new_iteration=False
        )
        assert bound_scheduler.select(observation) == current

    def test_rebuilds_after_failure(self, bound_scheduler):
        observation = make_observation(
            [UP, UP, UP, DOWN], current=Configuration({0: 2}), failure=True,
            new_iteration=False,
        )
        config = bound_scheduler.select(observation)
        assert config.total_tasks() == 3
        assert 3 not in config.workers

    def test_randomness_is_seeded(self):
        platform = uniform_platform(6, speed=1, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=3, iterations=1)
        picks = []
        for _ in range(2):
            scheduler = RandomScheduler()
            scheduler.bind(platform, application, AnalysisContext(platform),
                           np.random.default_rng(123))
            observation = make_observation([UP] * 6)
            picks.append(scheduler.select(observation))
        assert picks[0] == picks[1]

    def test_distribution_covers_workers(self):
        platform = uniform_platform(5, speed=1, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=1)
        scheduler = RandomScheduler()
        scheduler.bind(platform, application, AnalysisContext(platform),
                       np.random.default_rng(7))
        used = set()
        for _ in range(40):
            observation = make_observation([UP] * 5)
            used.update(scheduler.select(observation).workers)
        assert used == {0, 1, 2, 3, 4}

    def test_requires_binding(self):
        scheduler = RandomScheduler()
        with pytest.raises(RuntimeError):
            scheduler.select(make_observation([UP]))
