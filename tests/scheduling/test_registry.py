"""Tests for the heuristic registry."""

import pytest

from repro.scheduling import (
    ALL_HEURISTICS,
    PASSIVE_HEURISTICS,
    PROACTIVE_HEURISTICS,
    create_scheduler,
)
from repro.scheduling.passive import PassiveHeuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.scheduling.random_heuristic import RandomScheduler
from repro.scheduling.registry import (
    EXTENSION_HEURISTIC_NAMES,
    TABLE2_HEURISTICS,
    available_heuristics,
    canonical_heuristic,
    heuristic_info,
)


class TestRegistry:
    def test_seventeen_heuristics(self):
        assert len(ALL_HEURISTICS) == 17
        assert len(PASSIVE_HEURISTICS) == 4
        assert len(PROACTIVE_HEURISTICS) == 12
        assert "RANDOM" in ALL_HEURISTICS

    def test_proactive_names_match_paper(self):
        expected = {
            f"{criterion}-{heuristic}"
            for criterion in ("P", "E", "Y")
            for heuristic in ("IP", "IE", "IY", "IAY")
        }
        assert set(PROACTIVE_HEURISTICS) == expected

    def test_table2_heuristics_are_known(self):
        assert set(TABLE2_HEURISTICS).issubset(set(ALL_HEURISTICS))
        assert "IE" in TABLE2_HEURISTICS

    def test_create_random(self):
        assert isinstance(create_scheduler("random"), RandomScheduler)

    @pytest.mark.parametrize("name", ["IP", "IE", "IY", "IAY"])
    def test_create_passive(self, name):
        scheduler = create_scheduler(name.lower())
        assert isinstance(scheduler, PassiveHeuristic)
        assert scheduler.name == name

    @pytest.mark.parametrize("name", ["Y-IE", "P-IP", "E-IAY"])
    def test_create_proactive(self, name):
        scheduler = create_scheduler(name)
        assert isinstance(scheduler, ProactiveHeuristic)
        assert scheduler.name == name
        assert scheduler.criterion.name == name.split("-")[0]
        assert scheduler.passive.name == name.split("-", 1)[1]

    def test_every_registered_name_instantiates(self):
        for name in ALL_HEURISTICS:
            assert create_scheduler(name).name == name

    @pytest.mark.parametrize("name", ["", "XX", "Z-IE", "Y-", "AY-IE", "Y_IE"])
    def test_unknown_names_rejected(self, name):
        with pytest.raises(ValueError):
            create_scheduler(name)

    def test_available_heuristics_includes_extensions(self):
        names = available_heuristics()
        # Paper heuristics first (in paper order), then every extension that
        # create_scheduler accepts — the two lists can no longer drift apart.
        assert names[: len(ALL_HEURISTICS)] == list(ALL_HEURISTICS)
        assert set(names[len(ALL_HEURISTICS):]) == set(EXTENSION_HEURISTIC_NAMES)
        for name in names:
            assert create_scheduler(name).name == name

    def test_available_heuristics_family_filter(self):
        assert available_heuristics(family="passive") == list(PASSIVE_HEURISTICS)
        assert available_heuristics(family="proactive") == list(PROACTIVE_HEURISTICS)
        assert available_heuristics(family="baseline") == ["RANDOM"]
        assert available_heuristics(family="extension") == list(EXTENSION_HEURISTIC_NAMES)

    def test_heuristic_info_metadata(self):
        info = heuristic_info("Y-IE")
        assert info.family == "proactive" and info.paper
        info = heuristic_info("THRESHOLD-IE(tau=0.9)")
        assert info.family == "extension" and not info.paper
        parameter = info.parameter("tau")
        assert parameter is not None and parameter.name == "threshold"


class TestParameterizedExpressions:
    def test_threshold_alias_and_canonical_name(self):
        scheduler = create_scheduler("threshold-ie( TAU = 0.7 )")
        assert scheduler.threshold == 0.7
        assert scheduler.name == "THRESHOLD-IE(threshold=0.7)"

    def test_fast_pool_and_sticky_patience(self):
        assert create_scheduler("FAST(k=8)").k == 8
        assert create_scheduler("STICKY(patience=3)").patience == 3
        assert create_scheduler("FAST").k is None
        assert create_scheduler("STICKY").patience == 0

    def test_canonical_is_stable_across_spellings(self):
        spellings = [
            "THRESHOLD-IE(tau=0.5)",
            "threshold-ie(threshold=0.5)",
            " THRESHOLD-IE ( threshold = 0.5 ) ",
        ]
        canonicals = {canonical_heuristic(text) for text in spellings}
        assert canonicals == {"THRESHOLD-IE(threshold=0.5)"}

    @pytest.mark.parametrize(
        "expression",
        [
            "IE(x=1)",                      # IE takes no parameters
            "THRESHOLD-IE(bogus=1)",        # unknown parameter
            "THRESHOLD-IE(threshold=yes)",  # bad type (string for float)
            "STICKY(patience=1.5)",         # bad type (float for int)
            "FAST(k=8",                     # unterminated call
            "THRESHOLD-IE(tau=0.1, threshold=0.2)",  # alias + canonical clash
        ],
    )
    def test_invalid_expressions_rejected(self, expression):
        with pytest.raises(ValueError):
            create_scheduler(expression)
