"""Tests for the heuristic registry."""

import pytest

from repro.scheduling import (
    ALL_HEURISTICS,
    PASSIVE_HEURISTICS,
    PROACTIVE_HEURISTICS,
    create_scheduler,
)
from repro.scheduling.passive import PassiveHeuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.scheduling.random_heuristic import RandomScheduler
from repro.scheduling.registry import TABLE2_HEURISTICS, available_heuristics


class TestRegistry:
    def test_seventeen_heuristics(self):
        assert len(ALL_HEURISTICS) == 17
        assert len(PASSIVE_HEURISTICS) == 4
        assert len(PROACTIVE_HEURISTICS) == 12
        assert "RANDOM" in ALL_HEURISTICS

    def test_proactive_names_match_paper(self):
        expected = {
            f"{criterion}-{heuristic}"
            for criterion in ("P", "E", "Y")
            for heuristic in ("IP", "IE", "IY", "IAY")
        }
        assert set(PROACTIVE_HEURISTICS) == expected

    def test_table2_heuristics_are_known(self):
        assert set(TABLE2_HEURISTICS).issubset(set(ALL_HEURISTICS))
        assert "IE" in TABLE2_HEURISTICS

    def test_create_random(self):
        assert isinstance(create_scheduler("random"), RandomScheduler)

    @pytest.mark.parametrize("name", ["IP", "IE", "IY", "IAY"])
    def test_create_passive(self, name):
        scheduler = create_scheduler(name.lower())
        assert isinstance(scheduler, PassiveHeuristic)
        assert scheduler.name == name

    @pytest.mark.parametrize("name", ["Y-IE", "P-IP", "E-IAY"])
    def test_create_proactive(self, name):
        scheduler = create_scheduler(name)
        assert isinstance(scheduler, ProactiveHeuristic)
        assert scheduler.name == name
        assert scheduler.criterion.name == name.split("-")[0]
        assert scheduler.passive.name == name.split("-", 1)[1]

    def test_every_registered_name_instantiates(self):
        for name in ALL_HEURISTICS:
            assert create_scheduler(name).name == name

    @pytest.mark.parametrize("name", ["", "XX", "Z-IE", "Y-", "AY-IE", "Y_IE"])
    def test_unknown_names_rejected(self, name):
        with pytest.raises(ValueError):
            create_scheduler(name)

    def test_available_heuristics(self):
        assert available_heuristics() == list(ALL_HEURISTICS)
