"""Tests for the proactive heuristics C-H."""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.analysis.criteria import get_criterion
from repro.application import Application, Configuration
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.exceptions import SchedulingError
from repro.platform import Platform, Processor
from repro.scheduling import create_scheduler
from repro.scheduling.base import Observation
from repro.scheduling.passive import make_passive_heuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.types import DOWN, UP


def make_platform(stays=None, speeds=None, tprog=2, tdata=1, ncom=2):
    stays = stays or [(0.98, 0.95, 0.9), (0.95, 0.9, 0.9), (0.92, 0.9, 0.9), (0.96, 0.93, 0.9)]
    speeds = speeds or [1, 2, 3, 2]
    processors = [
        Processor(
            speed=speed,
            capacity=5,
            availability=MarkovAvailabilityModel(paper_transition_matrix(list(stay))),
        )
        for stay, speed in zip(stays, speeds)
    ]
    return Platform(processors, ncom=ncom, tprog=tprog, tdata=tdata)


def make_observation(states, current=None, **kwargs):
    return Observation(
        slot=kwargs.get("slot", 0),
        states=np.array(states, dtype=np.int8),
        current_configuration=current or Configuration.empty(),
        iteration_index=kwargs.get("iteration_index", 0),
        iteration_elapsed=kwargs.get("elapsed", 0),
        progress=kwargs.get("progress", 0),
        failure=kwargs.get("failure", False),
        new_iteration=kwargs.get("new_iteration", False),
        has_program=frozenset(kwargs.get("has_program", ())),
        data_received=kwargs.get("data_received", {}),
        comm_remaining=kwargs.get("comm_remaining", {}),
    )


def bind(scheduler, platform, m=5):
    application = Application(tasks_per_iteration=m, iterations=3)
    scheduler.bind(platform, application, AnalysisContext(platform), np.random.default_rng(0))
    return scheduler


class TestConstruction:
    def test_unsafe_criterion_rejected(self):
        with pytest.raises(SchedulingError):
            ProactiveHeuristic(get_criterion("AY"), make_passive_heuristic("IE"))

    def test_unsafe_criterion_allowed_when_forced(self):
        scheduler = ProactiveHeuristic(
            get_criterion("AY"), make_passive_heuristic("IE"), allow_unsafe_criterion=True
        )
        assert scheduler.name == "AY-IE"

    def test_name(self):
        scheduler = ProactiveHeuristic(get_criterion("Y"), make_passive_heuristic("IAY"))
        assert scheduler.name == "Y-IAY"


class TestProactiveBehaviour:
    def test_builds_configuration_on_new_iteration(self):
        platform = make_platform()
        scheduler = bind(create_scheduler("Y-IE"), platform)
        observation = make_observation([UP, UP, UP, UP], new_iteration=True)
        config = scheduler.select(observation)
        assert config.total_tasks() == 5
        config.validate(platform, 5)

    def test_switches_to_better_workers_mid_iteration(self):
        """A proactive heuristic abandons a clearly inferior configuration."""
        platform = make_platform()
        scheduler = bind(create_scheduler("E-IE"), platform)
        # Current configuration uses only the slowest worker (id 2, speed 3)
        # and has made no progress; workers 0 and 1 are now UP.
        poor = Configuration({2: 5})
        observation = make_observation(
            [UP, UP, UP, UP], current=poor, new_iteration=False, progress=0,
            elapsed=1, comm_remaining={2: 7},
        )
        config = scheduler.select(observation)
        assert config != poor
        assert config.total_tasks() == 5

    def test_keeps_configuration_when_nearly_done(self):
        """Progress makes the current configuration unbeatable near the end."""
        platform = make_platform()
        scheduler = bind(create_scheduler("E-IE"), platform)
        # Current config on worker 2 only: workload 15, 14 slots already done,
        # no communication left; a fresh configuration would need a full
        # communication + computation phase.
        current = Configuration({2: 5})
        observation = make_observation(
            [UP, UP, UP, UP], current=current, new_iteration=False, progress=14,
            elapsed=30, comm_remaining={2: 0}, has_program=[2],
        )
        assert scheduler.select(observation) == current

    def test_passive_component_handles_failures(self):
        platform = make_platform()
        scheduler = bind(create_scheduler("Y-IE"), platform)
        observation = make_observation(
            [UP, UP, UP, DOWN], current=Configuration({0: 3, 1: 2}), failure=True,
        )
        config = scheduler.select(observation)
        assert config.total_tasks() == 5
        assert 3 not in config.workers

    def test_no_switch_to_equivalent_candidate(self):
        """Switching requires a *strictly* better candidate (anti-divergence)."""
        platform = make_platform()
        scheduler = bind(create_scheduler("E-IE"), platform)
        observation_new = make_observation([UP, UP, UP, UP], new_iteration=True)
        config = scheduler.select(observation_new)
        # Present the same configuration as current, with zero progress: the
        # candidate the heuristic would build is identical, so it must keep it.
        observation_same = make_observation(
            [UP, UP, UP, UP], current=config, new_iteration=False, progress=0,
            elapsed=0,
            comm_remaining=config.communication_slots(platform),
        )
        assert scheduler.select(observation_same) == config

    def test_candidate_cache_is_exact_for_ie_selection(self):
        platform = make_platform()
        scheduler = bind(create_scheduler("Y-IE"), platform)
        observation = make_observation(
            [UP, UP, UP, UP], current=Configuration({2: 5}), new_iteration=False,
            comm_remaining={2: 7}, elapsed=3,
        )
        first = scheduler._candidate(observation)
        second = scheduler._candidate(observation)
        assert first is second  # memoised
        fresh = scheduler.passive.build_candidate(observation)
        assert first == fresh  # and identical to an uncached build

    def test_candidate_not_cached_for_yield_selection(self):
        platform = make_platform()
        scheduler = bind(create_scheduler("E-IY"), platform)
        assert not scheduler._candidate_cacheable

    def test_cache_cleared_on_rebind(self):
        platform = make_platform()
        scheduler = bind(create_scheduler("Y-IE"), platform)
        observation = make_observation(
            [UP, UP, UP, UP], current=Configuration({2: 5}), new_iteration=False,
            comm_remaining={2: 7},
        )
        scheduler._candidate(observation)
        assert scheduler._candidate_cache
        bind(scheduler, platform)
        assert not scheduler._candidate_cache


class TestProactiveOutperformsPassiveOnEasyInstance:
    def test_proactive_not_worse_on_reliable_fast_platform(self):
        """End-to-end sanity: Y-IE should not lose badly to IE on an easy instance."""
        from repro.simulation import simulate

        platform = make_platform()
        application = Application(tasks_per_iteration=5, iterations=5)
        analysis = AnalysisContext(platform)
        results = {}
        for name in ("IE", "Y-IE"):
            results[name] = simulate(
                platform, application, create_scheduler(name), seed=42,
                max_slots=50_000, analysis=analysis,
            )
        assert results["Y-IE"].success
        assert results["IE"].success
        assert results["Y-IE"].makespan <= 2 * results["IE"].makespan
