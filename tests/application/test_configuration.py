"""Tests for worker configurations (task allocation value objects)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.application import Configuration
from repro.availability import MarkovAvailabilityModel
from repro.exceptions import InvalidConfigurationError
from repro.platform import Platform, Processor


@pytest.fixture
def platform():
    processors = [
        Processor(speed=s, capacity=c, availability=MarkovAvailabilityModel.always_up())
        for s, c in [(1, 5), (2, 5), (3, 2), (4, 1)]
    ]
    return Platform(processors, ncom=2, tprog=2, tdata=1)


class TestConstruction:
    def test_basic(self):
        config = Configuration({0: 2, 3: 1})
        assert config.workers == (0, 3)
        assert config.tasks_on(0) == 2
        assert config.tasks_on(1) == 0
        assert config.total_tasks() == 3
        assert config.num_workers() == 2

    def test_zero_entries_dropped(self):
        config = Configuration({0: 0, 1: 2})
        assert 0 not in config
        assert 1 in config

    def test_negative_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration({0: -1})

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration({0: 1.5})

    def test_negative_worker_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration({-1: 1})

    def test_empty(self):
        assert Configuration.empty().is_empty()
        assert Configuration.empty().total_tasks() == 0

    def test_single(self):
        config = Configuration.single(2, 3)
        assert config.allocation == {2: 3}

    def test_even_split(self):
        config = Configuration.even_split([1, 2, 3], 7)
        assert config.total_tasks() == 7
        assert sorted(config.allocation.values(), reverse=True) == [3, 2, 2]

    def test_even_split_empty_workers(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration.even_split([], 3)
        assert Configuration.even_split([], 0).is_empty()


class TestDerivedQuantities:
    def test_workload_is_max_load(self, platform):
        config = Configuration({0: 3, 1: 2, 2: 1})
        # loads: 3*1=3, 2*2=4, 1*3=3 -> W = 4
        assert config.workload(platform) == 4

    def test_workload_empty(self, platform):
        assert Configuration.empty().workload(platform) == 0

    def test_per_worker_load(self, platform):
        config = Configuration({1: 2, 2: 1})
        assert config.per_worker_load(platform) == {1: 4, 2: 3}

    def test_communication_slots_fresh(self, platform):
        config = Configuration({0: 2, 1: 1})
        slots = config.communication_slots(platform)
        # Tprog=2, Tdata=1: worker 0 -> 2 + 2, worker 1 -> 2 + 1.
        assert slots == {0: 4, 1: 3}

    def test_communication_slots_with_program_and_data(self, platform):
        config = Configuration({0: 2, 1: 1})
        slots = config.communication_slots(
            platform, has_program=[0], received_data={0: 1, 1: 5}
        )
        # Worker 0: program already there, 1 of 2 data messages left -> 1 slot.
        # Worker 1: needs program, data capped at its 1 task -> 2 + 0 = 2.
        assert slots == {0: 1, 1: 2}


class TestValidation:
    def test_valid(self, platform):
        Configuration({0: 2, 1: 3}).validate(platform, 5)

    def test_wrong_total(self, platform):
        with pytest.raises(InvalidConfigurationError):
            Configuration({0: 2}).validate(platform, 5)

    def test_capacity_exceeded(self, platform):
        with pytest.raises(InvalidConfigurationError):
            Configuration({3: 2}).validate(platform, 2)

    def test_unknown_worker(self, platform):
        with pytest.raises(InvalidConfigurationError):
            Configuration({9: 2}).validate(platform, 2)

    def test_is_valid(self, platform):
        assert Configuration({0: 5}).is_valid(platform, 5)
        assert not Configuration({0: 6}).is_valid(platform, 5)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Configuration({0: 1, 2: 2})
        b = Configuration({2: 2, 0: 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Configuration({0: 1})

    def test_with_task_added(self):
        config = Configuration({0: 1})
        updated = config.with_task_added(0).with_task_added(3)
        assert updated.allocation == {0: 2, 3: 1}
        assert config.allocation == {0: 1}  # original unchanged

    def test_without_worker(self):
        config = Configuration({0: 1, 1: 2})
        assert config.without_worker(0).allocation == {1: 2}
        assert config.without_worker(9) == config

    def test_round_trip_dict(self):
        config = Configuration({0: 1, 4: 2})
        assert Configuration.from_dict(config.to_dict()) == config

    def test_iteration_and_items(self):
        config = Configuration({3: 1, 1: 2})
        assert list(config) == [1, 3]
        assert dict(config.items()) == {1: 2, 3: 1}


class TestPropertyBased:
    @given(
        allocation=st.dictionaries(
            keys=st.integers(min_value=0, max_value=15),
            values=st.integers(min_value=0, max_value=5),
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_total_tasks_matches_sum_of_positive_entries(self, allocation):
        config = Configuration(allocation)
        assert config.total_tasks() == sum(v for v in allocation.values() if v > 0)
        assert all(config.tasks_on(w) > 0 for w in config.workers)

    @given(
        allocation=st.dictionaries(
            keys=st.integers(min_value=0, max_value=15),
            values=st.integers(min_value=1, max_value=5),
            min_size=1,
            max_size=8,
        ),
        worker=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=100, deadline=None)
    def test_with_task_added_increments_exactly_one_worker(self, allocation, worker):
        config = Configuration(allocation)
        updated = config.with_task_added(worker)
        assert updated.total_tasks() == config.total_tasks() + 1
        assert updated.tasks_on(worker) == config.tasks_on(worker) + 1
        for other in set(allocation) - {worker}:
            assert updated.tasks_on(other) == config.tasks_on(other)
