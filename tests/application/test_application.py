"""Tests for the Application model."""

import pytest

from repro.application import Application
from repro.exceptions import InvalidApplicationError


class TestApplication:
    def test_basic(self):
        app = Application(tasks_per_iteration=5, iterations=10)
        assert app.m == 5
        assert app.iterations == 10
        assert app.total_tasks() == 50

    def test_defaults(self):
        app = Application(tasks_per_iteration=3)
        assert app.iterations == 10

    @pytest.mark.parametrize("m", [0, -1, 1.5, True])
    def test_invalid_tasks(self, m):
        with pytest.raises(InvalidApplicationError):
            Application(tasks_per_iteration=m)

    @pytest.mark.parametrize("iterations", [0, -3, 2.5])
    def test_invalid_iterations(self, iterations):
        with pytest.raises(InvalidApplicationError):
            Application(tasks_per_iteration=1, iterations=iterations)

    def test_invalid_sizes(self):
        with pytest.raises(InvalidApplicationError):
            Application(tasks_per_iteration=1, program_size=-1.0)
        with pytest.raises(InvalidApplicationError):
            Application(tasks_per_iteration=1, data_size=-0.5)

    def test_describe_uses_name(self):
        app = Application(tasks_per_iteration=2, name="cg-solver")
        assert "cg-solver" in app.describe()

    def test_round_trip(self):
        app = Application(tasks_per_iteration=4, iterations=7, program_size=100.0,
                          data_size=10.0, name="x")
        clone = Application.from_dict(app.to_dict())
        assert clone == app
