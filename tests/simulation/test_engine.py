"""Tests for the time-slot simulation engine."""

import numpy as np
import pytest

from repro.application import Application, Configuration
from repro.availability import AvailabilityTrace, MarkovAvailabilityModel
from repro.availability.generators import paper_transition_matrix
from repro.exceptions import SchedulingError, SimulationError
from repro.platform import Platform, Processor, uniform_platform
from repro.scheduling.base import Observation, Scheduler
from repro.simulation import SimulationEngine, simulate
from repro.simulation.events import EventKind


class StaticScheduler(Scheduler):
    """Test helper: always requests a fixed configuration when its workers are UP."""

    name = "STATIC"

    def __init__(self, allocation):
        super().__init__()
        self.target = Configuration(allocation)

    def select(self, observation: Observation) -> Configuration:
        if all(observation.is_up(worker) for worker in self.target.workers):
            return self.target
        # Keep the current configuration if it is still intact, otherwise wait.
        if not observation.failure and not observation.current_configuration.is_empty():
            return observation.current_configuration
        return Configuration.empty()


def reliable_processor(speed, capacity=5):
    return Processor(speed=speed, capacity=capacity,
                     availability=MarkovAvailabilityModel.always_up())


def figure1_platform():
    """Five processors with w_i = i, ncom = 2, Tprog = 2, Tdata = 1 (Figure 1 setup)."""
    processors = [reliable_processor(speed=i) for i in range(1, 6)]
    return Platform(processors, ncom=2, tprog=2, tdata=1)


class TestBasicExecution:
    def test_single_iteration_no_communication(self):
        platform = uniform_platform(3, speed=2, capacity=2, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=3, iterations=1)
        scheduler = StaticScheduler({0: 1, 1: 1, 2: 1})
        result = simulate(platform, application, scheduler, seed=0, max_slots=100)
        assert result.success
        # Workload = 1 task * speed 2 = 2 slots, no communication.
        assert result.makespan == 2
        assert result.completed_iterations == 1
        assert result.computation_slots == 2
        assert result.communication_slots == 0

    def test_multiple_iterations_accumulate(self):
        platform = uniform_platform(2, speed=3, capacity=3, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=4)
        scheduler = StaticScheduler({0: 1, 1: 1})
        result = simulate(platform, application, scheduler, seed=0, max_slots=100)
        assert result.success
        assert result.makespan == 4 * 3
        assert len(result.iterations) == 4
        assert all(record.completed for record in result.iterations)

    def test_unbalanced_allocation_sets_workload(self):
        platform = uniform_platform(2, speed=2, capacity=4, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=4, iterations=1)
        scheduler = StaticScheduler({0: 3, 1: 1})
        result = simulate(platform, application, scheduler, seed=0, max_slots=100)
        assert result.makespan == 6  # max(3, 1) tasks * speed 2

    def test_figure1_communication_and_computation_timeline(self):
        """Golden test for the Figure-1 configuration on an always-UP platform.

        Configuration: P2 and P3 get two tasks each, P4 gets one (0-based ids
        1, 2, 3).  With Tprog = 2, Tdata = 1 and ncom = 2 the communication
        phase takes 7 slots (P4 waits for a free channel), and the computation
        phase takes max(2*2, 2*3, 1*4) = 6 slots.
        """
        platform = figure1_platform()
        application = Application(tasks_per_iteration=5, iterations=1)
        scheduler = StaticScheduler({1: 2, 2: 2, 3: 1})
        engine = SimulationEngine(
            platform, application, scheduler, seed=0, max_slots=100,
            record_events=True, record_activity=True,
        )
        result = engine.run()
        assert result.success
        assert result.communication_slots == 7
        assert result.computation_slots == 6
        assert result.makespan == 13
        # Worker P1 (id 0) and P5 (id 4) are never enrolled.
        assert np.all(engine.activity_matrix[0] == " ")
        assert np.all(engine.activity_matrix[4] == " ")
        # P4 (id 3) is idle during the first slots (bandwidth constraint).
        assert list(engine.activity_matrix[3, :3]) == ["I", "I", "I"]

    def test_iterations_resend_data_but_not_program(self):
        platform = figure1_platform()
        application = Application(tasks_per_iteration=5, iterations=2)
        scheduler = StaticScheduler({1: 2, 2: 2, 3: 1})
        result = simulate(platform, application, scheduler, seed=0, max_slots=200)
        assert result.success
        # Iteration 2 needs only the data messages (5 messages, ncom = 2,
        # Tdata = 1): workers 1 and 2 take 2 slots, worker 3 one more -> 3 slots.
        first, second = result.iterations
        assert first.duration == 13
        assert second.communication_slots == 3
        assert second.duration == 3 + 6


class TestVolatileBehaviour:
    def test_reclaimed_worker_suspends_computation(self):
        # Worker 1 is RECLAIMED for slots 2-3; computation must stall 2 slots.
        rows = [
            "uuuuuuuuuuuu",
            "uurruuuuuuuu",
        ]
        trace = AvailabilityTrace(rows)
        platform = uniform_platform(2, speed=2, capacity=2, tprog=1, tdata=1)
        application = Application(tasks_per_iteration=2, iterations=1)
        scheduler = StaticScheduler({0: 1, 1: 1})
        result = simulate(
            platform, application, scheduler, seed=0, max_slots=12, trace=trace
        )
        assert result.success
        # Comm: each worker needs 1 (prog) + 1 (data) = 2 slots, ncom=2 -> slots 0-1.
        # Compute needs 2 all-UP slots; slots 2-3 are lost to the reclamation, so
        # the computation happens at slots 4-5.
        assert result.makespan == 6
        assert result.idle_slots == 2
        assert result.total_restarts == 0

    def test_down_worker_restarts_iteration(self):
        # Worker 1 crashes at slot 3 (during computation) and recovers at slot 5.
        rows = [
            "uuuuuuuuuuuuuuu",
            "uuuddunuuuuuuuu".replace("n", "u"),
        ]
        trace = AvailabilityTrace(rows)
        platform = uniform_platform(2, speed=3, capacity=2, tprog=0, tdata=1)
        application = Application(tasks_per_iteration=2, iterations=1)
        scheduler = StaticScheduler({0: 1, 1: 1})
        result = simulate(
            platform, application, scheduler, seed=0, max_slots=20, trace=trace
        )
        assert result.success
        assert result.total_restarts == 1
        # Timeline: comm slots 0-1 (1 data message each, ncom=2 serves both at
        # slot 0... Tdata=1 so both done at slot 0), compute slots 1-2, crash at
        # slot 3 -> restart; worker 1 re-enrolled at slot 5, needs its data again
        # (1 slot), then 3 compute slots with both UP.
        assert result.makespan >= 9

    def test_failure_counts_and_events(self):
        # Worker 0 crashes at slot 2 (mid-iteration) and recovers at slot 3.
        rows = ["uuduuuuuuuuu", "uuuuuuuuuuuu"]
        trace = AvailabilityTrace(rows)
        platform = uniform_platform(2, speed=3, capacity=2, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=2)
        scheduler = StaticScheduler({0: 1, 1: 1})
        engine = SimulationEngine(
            platform, application, scheduler, seed=0, max_slots=12, trace=trace,
            record_events=True,
        )
        result = engine.run()
        assert result.success
        assert result.total_restarts == 1
        assert engine.events.count(EventKind.WORKER_FAILED) == 1
        assert engine.events.count(EventKind.ITERATION_COMPLETED) == 2
        # Iteration 1 restarts at slot 3 and finishes at slot 5; iteration 2 at slot 8.
        assert result.makespan == 9

    def test_cap_reached_is_a_failure(self):
        # Worker 1 is DOWN forever: the 2-task iteration can never complete.
        trace = AvailabilityTrace(["uuuuuuuuuu", "dddddddddd"])
        platform = uniform_platform(2, speed=1, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=1)
        scheduler = StaticScheduler({0: 1, 1: 1})
        result = simulate(
            platform, application, scheduler, seed=0, max_slots=10, trace=trace
        )
        assert not result.success
        assert result.makespan is None
        assert result.completed_iterations == 0
        assert result.effective_makespan() == 10


class TestEngineValidation:
    def test_trace_must_cover_all_processors(self):
        platform = uniform_platform(3, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=1, iterations=1)
        with pytest.raises(SimulationError):
            SimulationEngine(
                platform, application, StaticScheduler({0: 1}),
                trace=AvailabilityTrace(["uu"]),
            )

    def test_trace_too_short_raises_at_runtime(self):
        platform = uniform_platform(1, speed=5, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=1, iterations=10)
        engine = SimulationEngine(
            platform, application, StaticScheduler({0: 1}),
            trace=AvailabilityTrace(["uuu"]), max_slots=50,
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_platform_capacity_checked(self):
        platform = uniform_platform(1, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=3, iterations=1)
        with pytest.raises(Exception):
            SimulationEngine(platform, application, StaticScheduler({0: 3}))

    def test_invalid_max_slots(self):
        platform = uniform_platform(1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=1, iterations=1)
        with pytest.raises(SimulationError):
            SimulationEngine(platform, application, StaticScheduler({0: 1}), max_slots=0)

    def test_scheduler_errors_are_caught(self):
        class BadScheduler(Scheduler):
            name = "BAD"

            def select(self, observation):
                return Configuration({0: 1})  # only 1 of 2 tasks

        platform = uniform_platform(2, capacity=2, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=1)
        with pytest.raises(SchedulingError):
            simulate(platform, application, BadScheduler(), max_slots=5)

    def test_scheduler_cannot_overload_capacity(self):
        class Overloader(Scheduler):
            name = "OVER"

            def select(self, observation):
                return Configuration({0: 2})

        platform = uniform_platform(2, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=1)
        with pytest.raises(SchedulingError):
            simulate(platform, application, Overloader(), max_slots=5)

    def test_scheduler_cannot_enroll_down_worker(self):
        class EnrollDown(Scheduler):
            name = "DOWNER"

            def select(self, observation):
                return Configuration({0: 1, 1: 1})

        trace = AvailabilityTrace(["uuuu", "dddd"])
        platform = uniform_platform(2, capacity=1, tprog=0, tdata=0)
        application = Application(tasks_per_iteration=2, iterations=1)
        with pytest.raises(SchedulingError):
            simulate(platform, application, EnrollDown(), trace=trace, max_slots=5)


class TestDeterminismAndPairing:
    def _markov_platform(self):
        stays = [(0.9, 0.9, 0.9), (0.95, 0.9, 0.9), (0.92, 0.9, 0.9)]
        processors = [
            Processor(speed=1, capacity=3,
                      availability=MarkovAvailabilityModel(paper_transition_matrix(list(s))))
            for s in stays
        ]
        return Platform(processors, ncom=2, tprog=1, tdata=1)

    def test_same_seed_same_result(self):
        platform = self._markov_platform()
        application = Application(tasks_per_iteration=3, iterations=3)
        a = simulate(platform, application, StaticScheduler({0: 1, 1: 1, 2: 1}),
                     seed=11, max_slots=5000)
        b = simulate(platform, application, StaticScheduler({0: 1, 1: 1, 2: 1}),
                     seed=11, max_slots=5000)
        assert a.makespan == b.makespan
        assert a.total_restarts == b.total_restarts

    def test_different_seeds_usually_differ(self):
        platform = self._markov_platform()
        application = Application(tasks_per_iteration=3, iterations=3)
        makespans = {
            simulate(platform, application, StaticScheduler({0: 1, 1: 1, 2: 1}),
                     seed=seed, max_slots=5000).makespan
            for seed in range(6)
        }
        assert len(makespans) > 1

    def test_availability_is_paired_across_schedulers(self):
        """Two different schedulers with the same seed see the same availability."""
        from repro.scheduling import create_scheduler

        platform = self._markov_platform()
        application = Application(tasks_per_iteration=3, iterations=2)

        makespans = {}
        for name in ("RANDOM", "IE"):
            engine = SimulationEngine(
                platform, application, create_scheduler(name), seed=77, max_slots=5000,
                record_activity=True,
            )
            result = engine.run()
            makespans[name] = result.makespan
            # Record the availability of the first 30 slots for comparison.
            window = min(30, engine.state_matrix.shape[1])
            makespans[name + "_states"] = engine.state_matrix[:, :window].tolist()
        assert makespans["RANDOM_states"] == makespans["IE_states"]
