"""Tests for the per-worker runtime state."""

import pytest

from repro.simulation.state import WorkerRuntime
from repro.types import DOWN, RECLAIMED, UP


class TestQueries:
    def test_state_predicates(self):
        runtime = WorkerRuntime(worker_id=0, state=UP)
        assert runtime.is_up() and not runtime.is_down() and not runtime.is_reclaimed()
        runtime.state = RECLAIMED
        assert runtime.is_reclaimed()
        runtime.state = DOWN
        assert runtime.is_down()

    def test_comm_slots_remaining_fresh_worker(self):
        runtime = WorkerRuntime(worker_id=0)
        runtime.on_enroll(3)
        assert runtime.program_slots_remaining(tprog=4) == 4
        assert runtime.data_slots_remaining(tdata=2) == 6
        assert runtime.comm_slots_remaining(4, 2) == 10
        assert not runtime.ready_to_compute(4, 2)

    def test_comm_slots_with_program(self):
        runtime = WorkerRuntime(worker_id=0, has_program=True)
        runtime.on_enroll(2)
        assert runtime.has_program  # enrolment keeps a complete program copy
        assert runtime.comm_slots_remaining(4, 2) == 4

    def test_ready_to_compute(self):
        runtime = WorkerRuntime(worker_id=0, has_program=True)
        runtime.on_enroll(1)
        runtime.data_received = 1
        assert runtime.ready_to_compute(4, 2)

    def test_not_enrolled_never_ready(self):
        runtime = WorkerRuntime(worker_id=0, has_program=True)
        assert not runtime.ready_to_compute(0, 0)


class TestTransitions:
    def test_on_down_clears_everything(self):
        runtime = WorkerRuntime(worker_id=1, has_program=True)
        runtime.on_enroll(2)
        runtime.data_received = 1
        runtime.on_down()
        assert not runtime.has_program
        assert not runtime.enrolled
        assert runtime.assigned_tasks == 0
        assert runtime.data_received == 0

    def test_on_unenroll_keeps_program_loses_data(self):
        runtime = WorkerRuntime(worker_id=1, has_program=True)
        runtime.on_enroll(2)
        runtime.data_received = 2
        runtime.program_progress = 0
        runtime.on_unenroll()
        assert runtime.has_program
        assert runtime.data_received == 0
        assert not runtime.enrolled

    def test_on_unenroll_discards_partial_program(self):
        runtime = WorkerRuntime(worker_id=1)
        runtime.on_enroll(1)
        runtime.program_progress = 3
        runtime.on_unenroll()
        assert runtime.program_progress == 0
        assert not runtime.has_program

    def test_on_enroll_discards_old_data(self):
        runtime = WorkerRuntime(worker_id=1, has_program=True)
        runtime.data_received = 3
        runtime.on_enroll(2)
        assert runtime.data_received == 0
        assert runtime.assigned_tasks == 2

    def test_on_enroll_invalid(self):
        with pytest.raises(ValueError):
            WorkerRuntime(worker_id=0).on_enroll(0)

    def test_on_reassign_caps_reusable_data(self):
        runtime = WorkerRuntime(worker_id=2, has_program=True)
        runtime.on_enroll(4)
        runtime.data_received = 3
        runtime.on_reassign(2)
        assert runtime.assigned_tasks == 2
        assert runtime.data_received == 2

    def test_on_reassign_keeps_data_when_growing(self):
        runtime = WorkerRuntime(worker_id=2)
        runtime.on_enroll(1)
        runtime.data_received = 1
        runtime.on_reassign(3)
        assert runtime.data_received == 1
        assert runtime.assigned_tasks == 3

    def test_on_reassign_invalid(self):
        with pytest.raises(ValueError):
            WorkerRuntime(worker_id=0).on_reassign(0)

    def test_on_new_iteration_resets_data_only(self):
        runtime = WorkerRuntime(worker_id=0, has_program=True)
        runtime.on_enroll(2)
        runtime.data_received = 2
        runtime.on_new_iteration()
        assert runtime.data_received == 0
        assert runtime.has_program
        assert runtime.enrolled


class TestCommunicationProgress:
    def test_program_then_data(self):
        runtime = WorkerRuntime(worker_id=0)
        runtime.on_enroll(1)
        kinds = [runtime.receive_communication_slot(2, 2) for _ in range(4)]
        assert kinds == ["program", "program", "data", "data"]
        assert runtime.has_program
        assert runtime.data_received == 1
        assert runtime.ready_to_compute(2, 2)

    def test_partial_data_progress(self):
        runtime = WorkerRuntime(worker_id=0, has_program=True)
        runtime.on_enroll(2)
        runtime.receive_communication_slot(0, 3)
        assert runtime.data_progress == 1
        assert runtime.data_received == 0
        assert runtime.data_slots_remaining(3) == 5

    def test_slot_granted_with_nothing_needed_raises(self):
        runtime = WorkerRuntime(worker_id=0, has_program=True)
        runtime.on_enroll(1)
        runtime.data_received = 1
        with pytest.raises(RuntimeError):
            runtime.receive_communication_slot(2, 1)

    def test_absorb_free_transfers(self):
        runtime = WorkerRuntime(worker_id=0)
        runtime.on_enroll(3)
        runtime.absorb_free_transfers(tprog=0, tdata=0)
        assert runtime.has_program
        assert runtime.data_received == 3
        assert runtime.ready_to_compute(0, 0)

    def test_absorb_free_transfers_only_when_zero_cost(self):
        runtime = WorkerRuntime(worker_id=0)
        runtime.on_enroll(3)
        runtime.absorb_free_transfers(tprog=2, tdata=1)
        assert not runtime.has_program
        assert runtime.data_received == 0

    def test_absorb_free_transfers_ignores_unenrolled(self):
        runtime = WorkerRuntime(worker_id=0)
        runtime.absorb_free_transfers(tprog=0, tdata=0)
        assert not runtime.has_program
