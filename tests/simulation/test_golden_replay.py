"""Golden-seed regression tests for the chunked simulation core.

``golden_engine_results.json`` was generated with the pre-refactor engine
(slot-by-slot ``next_state`` sampling, no fast-forwarding).  The refactored
engine must reproduce every one of those runs bit for bit — under the
vectorised block sampler, the legacy per-slot sampler, and any block size —
because the block samplers are stream-equivalent and the fast-forward paths
are exact.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.availability.diurnal import DiurnalAvailabilityModel
from repro.availability.semi_markov import SemiMarkovAvailabilityModel
from repro.platform import Platform, PlatformSpec, Processor, paper_platform
from repro.scheduling import create_scheduler
from repro.simulation import SimulationEngine

GOLDEN_PATH = Path(__file__).parent / "golden_engine_results.json"
GOLDEN_CASES = json.loads(GOLDEN_PATH.read_text())

RESULT_FIELDS = (
    "success",
    "makespan",
    "completed_iterations",
    "total_restarts",
    "total_configuration_changes",
    "communication_slots",
    "computation_slots",
    "idle_slots",
)


def build_setup(case):
    if case["kind"] == "markov":
        platform = paper_platform(
            PlatformSpec(num_processors=20, ncom=10, wmin=2), num_tasks=5, seed=123
        )
        application = Application(tasks_per_iteration=5, iterations=10)
    elif case["kind"] == "semimarkov":
        processors = [
            Processor(
                speed=1 + (q % 4),
                capacity=5,
                availability=SemiMarkovAvailabilityModel.desktop_grid(mean_up=30.0 + q),
            )
            for q in range(8)
        ]
        platform = Platform(processors, ncom=4, tprog=2, tdata=1)
        application = Application(tasks_per_iteration=4, iterations=5)
    else:
        processors = [
            Processor(
                speed=2,
                capacity=5,
                availability=DiurnalAvailabilityModel.office_hours(phase_offset=7 * q),
            )
            for q in range(6)
        ]
        platform = Platform(processors, ncom=3, tprog=2, tdata=1)
        application = Application(tasks_per_iteration=3, iterations=5)
    return platform, application


def run_case(case, *, sampler, block_size=4096, metrics=None):
    platform, application = build_setup(case)
    engine = SimulationEngine(
        platform,
        application,
        create_scheduler(case["heuristic"]),
        seed=case["seed"],
        max_slots=50_000,
        analysis=AnalysisContext(platform),
        sampler=sampler,
        block_size=block_size,
        metrics=metrics,
    )
    return engine.run()


def case_id(case):
    return f"{case['kind']}-{case['heuristic']}-s{case['seed']}"


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=case_id)
def test_block_sampler_reproduces_golden_run(case):
    result = run_case(case, sampler="block")
    for field in RESULT_FIELDS:
        assert getattr(result, field) == case[field], field


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=case_id)
def test_perslot_sampler_reproduces_golden_run(case):
    result = run_case(case, sampler="perslot")
    for field in RESULT_FIELDS:
        assert getattr(result, field) == case[field], field


@pytest.mark.parametrize("case", GOLDEN_CASES, ids=case_id)
def test_kernel_sampler_reproduces_golden_run(case):
    result = run_case(case, sampler="kernel")
    for field in RESULT_FIELDS:
        assert getattr(result, field) == case[field], field


@pytest.mark.parametrize("sampler", ["block", "kernel"])
@pytest.mark.parametrize("block_size", [1, 17, 512])
def test_block_size_does_not_change_results(block_size, sampler):
    """The chunk decomposition is an implementation detail, not a parameter."""
    for case in GOLDEN_CASES[:6]:
        result = run_case(case, sampler=sampler, block_size=block_size)
        for field in RESULT_FIELDS:
            assert getattr(result, field) == case[field], (case_id(case), field)


@pytest.mark.parametrize("heuristic", ["RANDOM", "IE", "Y-IE", "E-IAY", "THRESHOLD-IE"])
def test_all_samplers_agree(heuristic):
    """Differential check on a fresh platform, including proactive heuristics."""
    results = [run_case({"kind": "markov", "heuristic": heuristic, "seed": 1234},
                        sampler=sampler) for sampler in ("block", "perslot", "kernel")]
    for other in results[1:]:
        for field in RESULT_FIELDS:
            assert getattr(results[0], field) == getattr(other, field), field
