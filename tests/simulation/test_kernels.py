"""Differential tests of the kernel-sampler scan primitives.

Every primitive in :mod:`repro.simulation.kernels` is checked against a
dumb slot-by-slot reference on randomized blocks.  The *public* names
(``frozen_span`` & co.) are bound to the numba-compiled variants when numba
is importable and to the NumPy implementations otherwise, so running this
suite in both environments (the CI matrix sets ``REPRO_NO_NUMBA=1`` in one
lane) covers both backends; the private NumPy/loop twins are additionally
compared against each other directly so the non-active variant is exercised
everywhere.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.simulation.kernels import (
    HAVE_NUMBA,
    NUMBA_DISABLED_BY_ENV,
    BlockData,
    _comm_phase_span_loop,
    _comm_phase_span_numpy,
    _compute_span_loop,
    _compute_span_numpy,
    _frozen_span_loop,
    _frozen_span_numpy,
    block_companions,
    comm_phase_span,
    compute_span,
    frozen_span,
    kernel_backend,
    next_change_table,
)

UP, RECLAIMED, DOWN = 0, 1, 2


def random_block(rng, num_workers, length, p_down=0.2):
    """A random state block with realistic dwell (runs of equal states)."""
    block = np.empty((num_workers, length), dtype=np.int8)
    for q in range(num_workers):
        col = 0
        while col < length:
            state = rng.choice([UP, UP, RECLAIMED, DOWN], p=None)
            if state == DOWN and rng.random() > p_down:
                state = UP
            run = int(rng.integers(1, 6))
            block[q, col : col + run] = state
            col += run
    return block


def brute_next_change(block):
    num_workers, length = block.shape
    table = np.full((num_workers, length), length, dtype=np.int32)
    for q in range(num_workers):
        for j in range(length):
            for k in range(j + 1, length):
                if block[q, k] != block[q, j]:
                    table[q, j] = k
                    break
    return table


def brute_compute_span(block, enrolled, rel, length, needed):
    needed_eff = max(needed, 1)
    advance = progressed = 0
    for col in range(rel + 1, length):
        states = block[enrolled, col]
        if (states == DOWN).any():
            break
        if (states == UP).all():
            if progressed + 1 >= needed_eff:
                break  # the completing slot is left to the per-slot path
            progressed += 1
        advance += 1
    return advance, progressed


def brute_comm_phase(block, enrolled, needs, rel, length):
    """Slot-by-slot surplus-capacity policy: every needing UP worker served."""
    count = len(enrolled)
    units = np.zeros(count, dtype=np.int64)
    holders = np.zeros(count, dtype=bool)
    advance = 0
    for col in range(rel, length):
        states = block[enrolled, col]
        if (states == DOWN).any():
            break
        holders[:] = False
        serve = (states == UP) & (units < needs)
        units[serve] += 1
        holders[serve] = True
        advance += 1
        if (units >= needs).all():
            break
    return advance, units, holders


@pytest.mark.parametrize("seed", range(6))
def test_next_change_table_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    block = random_block(rng, num_workers=5, length=40)
    assert np.array_equal(next_change_table(block), brute_next_change(block))


def test_block_companions_matches_brute_force():
    rng = np.random.default_rng(7)
    block = random_block(rng, num_workers=4, length=30)
    for last_column in (None, block[:, 0].copy(), np.full(4, DOWN, dtype=np.int8)):
        down, same, changes = block_companions(block, last_column)
        for j in range(block.shape[1]):
            assert down[j] == (block[:, j] == DOWN).any()
            if j == 0:
                expected = last_column is not None and np.array_equal(
                    block[:, 0], last_column
                )
            else:
                expected = np.array_equal(block[:, j], block[:, j - 1])
            assert same[j] == expected, j
        assert np.array_equal(changes, np.flatnonzero(~same))


@pytest.mark.parametrize("seed", range(8))
def test_frozen_span_variants_agree_with_brute_force(seed):
    rng = np.random.default_rng(100 + seed)
    block = random_block(rng, num_workers=6, length=50)
    table = next_change_table(block)
    length = block.shape[1]
    for _ in range(20):
        size = int(rng.integers(0, 5))
        enrolled = np.sort(rng.choice(6, size=size, replace=False)).astype(np.int64)
        rel = int(rng.integers(0, length))
        span = 0
        while rel + span + 1 < length and all(
            block[q, rel + span + 1] == block[q, rel] for q in enrolled
        ):
            span += 1
        if enrolled.size == 0:
            span = length - rel - 1
        assert frozen_span(table, enrolled, rel) == span
        assert _frozen_span_numpy(table, enrolled, rel) == span
        assert _frozen_span_loop(table, enrolled, rel) == span


@pytest.mark.parametrize("seed", range(8))
def test_compute_span_variants_agree_with_brute_force(seed):
    rng = np.random.default_rng(200 + seed)
    block = np.ascontiguousarray(random_block(rng, num_workers=6, length=700))
    length = block.shape[1]
    for _ in range(15):
        size = int(rng.integers(1, 5))
        enrolled = np.sort(rng.choice(6, size=size, replace=False)).astype(np.int64)
        rel = int(rng.integers(0, length))
        needed = int(rng.integers(1, 8))
        expected = brute_compute_span(block, enrolled, rel, length, needed)
        assert compute_span(block, enrolled, rel, length, needed) == expected
        assert _compute_span_numpy(block, enrolled, rel, length, needed) == expected
        assert _compute_span_loop(block, enrolled, rel, length, needed) == expected


@pytest.mark.parametrize("seed", range(8))
def test_comm_phase_span_variants_agree_with_brute_force(seed):
    rng = np.random.default_rng(300 + seed)
    block = np.ascontiguousarray(random_block(rng, num_workers=6, length=200))
    length = block.shape[1]
    for _ in range(15):
        size = int(rng.integers(1, 5))
        enrolled = np.sort(rng.choice(6, size=size, replace=False)).astype(np.int64)
        rel = int(rng.integers(0, length))
        # The engine only calls this on a column without enrolled failures.
        block[enrolled, rel] = np.where(
            block[enrolled, rel] == DOWN, UP, block[enrolled, rel]
        )
        needs = rng.integers(0, 6, size=size).astype(np.int64)
        if not needs.any():
            needs[0] = 1
        expected = brute_comm_phase(block, enrolled, needs, rel, length)
        for variant in (comm_phase_span, _comm_phase_span_numpy, _comm_phase_span_loop):
            advance, units, holders = variant(block, enrolled, needs, rel, length)
            assert advance == expected[0], variant
            assert np.array_equal(units, expected[1]), variant
            assert np.array_equal(holders, expected[2]), variant


def test_block_data_builds_next_change_once():
    rng = np.random.default_rng(9)
    block = random_block(rng, num_workers=3, length=20)
    data = BlockData(block, None)
    table = data.ensure_next_change()
    assert data.ensure_next_change() is table
    assert np.array_equal(table, next_change_table(block))
    assert data.length == 20


def test_kernel_backend_name_is_consistent():
    assert kernel_backend() == ("numba" if HAVE_NUMBA else "numpy")
    if NUMBA_DISABLED_BY_ENV:
        assert not HAVE_NUMBA


SUBPROCESS_RUN = """
import json
from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling import create_scheduler
from repro.simulation import SimulationEngine, kernel_backend

platform = paper_platform(PlatformSpec(num_processors=10, ncom=5, wmin=2),
                          num_tasks=5, seed=11)
engine = SimulationEngine(
    platform, Application(tasks_per_iteration=5, iterations=5),
    create_scheduler("IE"), seed=42, max_slots=20_000,
    analysis=AnalysisContext(platform), sampler="kernel",
)
result = engine.run()
print(json.dumps({
    "backend": kernel_backend(),
    "makespan": result.makespan,
    "restarts": result.total_restarts,
    "communication_slots": result.communication_slots,
    "computation_slots": result.computation_slots,
}))
"""


def _run_reference_case(*, no_numba):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    if no_numba:
        env["REPRO_NO_NUMBA"] = "1"
    else:
        env.pop("REPRO_NO_NUMBA", None)
    output = subprocess.run(
        [sys.executable, "-c", SUBPROCESS_RUN],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(output.stdout)


def test_repro_no_numba_forces_numpy_backend_same_results():
    """REPRO_NO_NUMBA=1 switches the backend without changing any result."""
    forced = _run_reference_case(no_numba=True)
    assert forced.pop("backend") == "numpy"
    default = _run_reference_case(no_numba=False)
    default.pop("backend")  # "numba" when installed, "numpy" otherwise
    assert default == forced
