"""Multi-heuristic one-pass driver: bit-identity against sequential runs.

The acceptance bar of the one-pass driver is *exactness*: for every contract
(``passive_between_rebuilds``) heuristic, driving N schedulers over one
shared availability realisation must produce ``SimulationResult``s equal —
field for field, iteration record for iteration record — to N sequential
``SimulationEngine.run()`` calls with the same seed.  The suite pins that
over every registered passive heuristic plus the contract-flagged extension
heuristics (``RANDOM``, ``FAST``, ``STICKY``, ``THRESHOLD-IE(tau=0.5)``),
in model and replay-trace mode, on the golden-seed platform, and through
the campaign layer's ``ProcessPoolExecutor`` fan-out.
"""

import numpy as np
import pytest

from repro.analysis.cache import AnalysisContext
from repro.application import Application
from repro.availability.trace import AvailabilityTrace
from repro.exceptions import SimulationError
from repro.experiments import CampaignScale
from repro.experiments.runner import run_campaign
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling import PASSIVE_HEURISTICS, create_scheduler
from repro.simulation import MultiHeuristicDriver, SharedBlockSource, SimulationEngine

pytestmark = pytest.mark.slow

#: Every registered passive heuristic plus the contract-flagged extensions.
CONTRACT_HEURISTICS = list(PASSIVE_HEURISTICS) + [
    "RANDOM",
    "FAST",
    "STICKY",
    "THRESHOLD-IE(tau=0.5)",
]

MAX_SLOTS = 20_000


def golden_setup():
    """The golden-replay markov platform (20 workers, m=5)."""
    platform = paper_platform(
        PlatformSpec(num_processors=20, ncom=10, wmin=2), num_tasks=5, seed=123
    )
    return platform, Application(tasks_per_iteration=5, iterations=10)


def sequential_results(platform, application, names, *, seed, sampler, trace=None):
    analysis = AnalysisContext(platform)
    results = []
    for name in names:
        engine = SimulationEngine(
            platform,
            application,
            create_scheduler(name),
            seed=seed,
            max_slots=MAX_SLOTS,
            analysis=analysis,
            sampler=sampler,
            trace=trace,
        )
        results.append(engine.run())
    return results


def one_pass_results(platform, application, names, *, seed, sampler, trace=None):
    driver = MultiHeuristicDriver(
        platform,
        application,
        [create_scheduler(name) for name in names],
        seed=seed,
        max_slots=MAX_SLOTS,
        trace=trace,
        sampler=sampler,
    )
    results = driver.run()
    assert len(driver.wall_seconds) == len(names)
    assert all(wall >= 0.0 for wall in driver.wall_seconds)
    return results


@pytest.mark.parametrize("sampler", ["kernel", "block"])
@pytest.mark.parametrize("seed", [7, 1234])
def test_one_pass_bit_identical_to_sequential(sampler, seed):
    platform, application = golden_setup()
    solo = sequential_results(
        platform, application, CONTRACT_HEURISTICS, seed=seed, sampler=sampler
    )
    shared = one_pass_results(
        platform, application, CONTRACT_HEURISTICS, seed=seed, sampler=sampler
    )
    for name, expected, got in zip(CONTRACT_HEURISTICS, solo, shared):
        assert got == expected, name  # dataclass eq: every field + every record


def test_one_pass_matches_block_sampler_sequential():
    """The one-pass kernel realisation equals per-heuristic *block* runs."""
    platform, application = golden_setup()
    solo = sequential_results(
        platform, application, CONTRACT_HEURISTICS, seed=7, sampler="block"
    )
    shared = one_pass_results(
        platform, application, CONTRACT_HEURISTICS, seed=7, sampler="kernel"
    )
    for name, expected, got in zip(CONTRACT_HEURISTICS, solo, shared):
        assert got == expected, name


def random_trace(num_processors, horizon, seed):
    rng = np.random.default_rng(seed)
    states = np.empty((num_processors, horizon), dtype=np.int8)
    for q in range(num_processors):
        col = 0
        while col < horizon:
            state = int(rng.choice([0, 0, 0, 1, 2]))
            run = int(rng.integers(5, 40))
            states[q, col : col + run] = state
            col += run
    return AvailabilityTrace(states)


@pytest.mark.parametrize("sampler", ["kernel", "block"])
def test_one_pass_trace_mode_bit_identical(sampler):
    platform, application = golden_setup()
    trace = random_trace(20, MAX_SLOTS, seed=99)
    solo = sequential_results(
        platform, application, CONTRACT_HEURISTICS, seed=5, sampler=sampler,
        trace=trace,
    )
    shared = one_pass_results(
        platform, application, CONTRACT_HEURISTICS, seed=5, sampler=sampler,
        trace=trace,
    )
    for name, expected, got in zip(CONTRACT_HEURISTICS, solo, shared):
        assert got == expected, name


def test_short_trace_raises_like_solo_engine():
    platform, application = golden_setup()
    trace = random_trace(20, 64, seed=3)  # far too short for ten iterations
    with pytest.raises(SimulationError, match="provide a longer trace"):
        one_pass_results(
            platform, application, ["IE", "IP"], seed=5, sampler="kernel",
            trace=trace,
        )


def test_perslot_sampler_rejected():
    platform, application = golden_setup()
    with pytest.raises(SimulationError, match="available samplers: block, kernel"):
        MultiHeuristicDriver(
            platform, application, [create_scheduler("IE")], sampler="perslot"
        )


def test_empty_scheduler_list_rejected():
    platform, application = golden_setup()
    with pytest.raises(SimulationError, match="at least one scheduler"):
        MultiHeuristicDriver(platform, application, [])


class TestSharedBlockSource:
    def test_windows_are_aligned_and_cached(self):
        platform, _ = golden_setup()
        source = SharedBlockSource(platform, seed=1, block_size=128, max_slots=1000)
        start, data = source.window(300)
        assert start == 256
        assert data.length == 128
        again_start, again = source.window(256)
        assert again_start == start and again is data  # same object, not a copy

    def test_model_mode_matches_solo_engine_blocks(self):
        platform, application = golden_setup()
        engine = SimulationEngine(
            platform, application, create_scheduler("IE"), seed=11,
            max_slots=2048, block_size=512, sampler="block",
        )
        engine._fetch_block(0)
        source = SharedBlockSource(platform, seed=11, block_size=512, max_slots=2048)
        _, data = source.window(0)
        assert np.array_equal(data.block, engine._block)
        _, later = source.window(1536)
        engine._fetch_block(512)
        engine._fetch_block(1024)
        engine._fetch_block(1536)
        assert np.array_equal(later.block, engine._block)

    def test_release_below_frees_and_rejects_stale_windows(self):
        platform, _ = golden_setup()
        source = SharedBlockSource(platform, seed=1, block_size=100, max_slots=1000)
        source.window(250)
        source.release_below(200)
        source.window(250)  # still live
        with pytest.raises(SimulationError, match="already released"):
            source.window(50)

    def test_out_of_range_slot_rejected(self):
        platform, _ = golden_setup()
        source = SharedBlockSource(platform, seed=1, max_slots=500)
        with pytest.raises(SimulationError, match="outside the source's range"):
            source.window(500)

    def test_trace_processor_mismatch_rejected(self):
        platform, _ = golden_setup()
        with pytest.raises(SimulationError, match="processors"):
            SharedBlockSource(platform, trace=random_trace(3, 100, seed=0))


CAMPAIGN_SCALE = CampaignScale(
    ncom_values=(5,),
    wmin_values=(1,),
    scenarios_per_cell=1,
    trials_per_scenario=2,
    iterations=2,
    makespan_cap=20_000,
    num_processors=8,
)

CAMPAIGN_HEURISTICS = ("IE", "IY", "RANDOM")


def _campaign_map(campaign):
    return {
        (r.heuristic,) + r.instance_key(): (
            r.makespan,
            r.success,
            r.completed_iterations,
            r.total_restarts,
            r.total_configuration_changes,
        )
        for r in campaign.results
    }


class TestCampaignOnePassRouting:
    def test_cell_matches_per_heuristic_campaigns(self):
        """A multi-heuristic cell (one-pass routed) equals solo campaigns."""
        together = run_campaign(
            4, heuristics=CAMPAIGN_HEURISTICS, scale=CAMPAIGN_SCALE, label="multi"
        )
        solo = {}
        for name in CAMPAIGN_HEURISTICS:
            campaign = run_campaign(
                4, heuristics=(name,), scale=CAMPAIGN_SCALE, label="multi"
            )
            solo.update(_campaign_map(campaign))
        assert _campaign_map(together) == solo

    def test_process_pool_fanout_matches_serial(self):
        serial = run_campaign(
            4, heuristics=CAMPAIGN_HEURISTICS, scale=CAMPAIGN_SCALE, label="pool"
        )
        parallel = run_campaign(
            4, heuristics=CAMPAIGN_HEURISTICS, scale=CAMPAIGN_SCALE, label="pool",
            n_jobs=2,
        )
        assert _campaign_map(serial) == _campaign_map(parallel)

    def test_block_sampler_campaign_matches_kernel(self):
        kernel = run_campaign(
            4, heuristics=CAMPAIGN_HEURISTICS, scale=CAMPAIGN_SCALE, label="s",
        )
        block = run_campaign(
            4, heuristics=CAMPAIGN_HEURISTICS, scale=CAMPAIGN_SCALE, label="s",
            sampler="block",
        )
        perslot = run_campaign(
            4, heuristics=CAMPAIGN_HEURISTICS, scale=CAMPAIGN_SCALE, label="s",
            sampler="perslot",
        )
        assert _campaign_map(kernel) == _campaign_map(block) == _campaign_map(perslot)
