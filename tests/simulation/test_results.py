"""Tests for simulation results and iteration records."""

import pytest

from repro.simulation.results import IterationRecord, SimulationResult


class TestIterationRecord:
    def test_duration(self):
        record = IterationRecord(index=0, start_slot=5, end_slot=12)
        assert record.completed
        assert record.duration == 8

    def test_unfinished(self):
        record = IterationRecord(index=1, start_slot=3)
        assert not record.completed
        assert record.duration is None

    def test_as_dict(self):
        record = IterationRecord(index=0, start_slot=0, end_slot=4, restarts=2)
        payload = record.as_dict()
        assert payload["restarts"] == 2
        assert payload["end_slot"] == 4


def make_result(success=True, makespan=120):
    return SimulationResult(
        scheduler="IE",
        success=success,
        makespan=makespan if success else None,
        completed_iterations=10 if success else 4,
        requested_iterations=10,
        max_slots=1000,
        iterations=[
            IterationRecord(index=0, start_slot=0, end_slot=50),
            IterationRecord(index=1, start_slot=51, end_slot=119),
        ],
        total_restarts=3,
        total_configuration_changes=5,
        communication_slots=40,
        computation_slots=60,
        idle_slots=20,
    )


class TestSimulationResult:
    def test_effective_makespan_success(self):
        assert make_result().effective_makespan() == 120

    def test_effective_makespan_failure_uses_cap(self):
        result = make_result(success=False)
        assert result.failed
        assert result.effective_makespan() == 1000
        assert result.effective_makespan(penalty=9999) == 9999

    def test_mean_iteration_duration(self):
        result = make_result()
        assert result.mean_iteration_duration() == pytest.approx((51 + 69) / 2)

    def test_mean_iteration_duration_none_when_no_completed(self):
        result = SimulationResult(
            scheduler="IE", success=False, makespan=None, completed_iterations=0,
            requested_iterations=10, max_slots=100,
            iterations=[IterationRecord(index=0, start_slot=0)],
        )
        assert result.mean_iteration_duration() is None

    def test_round_trip(self):
        result = make_result()
        clone = SimulationResult.from_dict(result.as_dict())
        assert clone.makespan == result.makespan
        assert len(clone.iterations) == 2
        assert clone.iterations[1].end_slot == 119

    def test_describe(self):
        assert "IE" in make_result().describe()
        assert "FAILED" in make_result(success=False).describe()
