"""Tests for the ASCII Gantt rendering."""

import numpy as np
import pytest

from repro.application import Application
from repro.availability import MarkovAvailabilityModel
from repro.platform import Platform, Processor
from repro.scheduling import create_scheduler
from repro.simulation import SimulationEngine, render_gantt


class TestRenderGantt:
    def test_basic_rendering(self):
        activity = np.array([["P", "D", "C", "C"], ["I", "P", "C", "C"]])
        states = np.array([[0, 0, 0, 0], [0, 0, 1, 2]])
        text = render_gantt(activity, states)
        lines = text.splitlines()
        assert lines[1].startswith("P1")
        assert "PDCC" in lines[1].replace(" ", "")
        # Worker 2: reclaimed slot rendered as the middle dot, down as '#'.
        assert "·" in lines[2]
        assert "#" in lines[2]
        assert "legend" in lines[-1]

    def test_window_selection(self):
        activity = np.full((1, 10), "C")
        states = np.zeros((1, 10), dtype=int)
        text = render_gantt(activity, states, start=2, end=5)
        worker_line = text.splitlines()[1]
        assert worker_line.count("C") == 3

    def test_invalid_window(self):
        activity = np.full((1, 3), "C")
        states = np.zeros((1, 3), dtype=int)
        with pytest.raises(ValueError):
            render_gantt(activity, states, start=5, end=2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_gantt(np.full((1, 3), "C"), np.zeros((2, 3), dtype=int))

    def test_custom_names(self):
        activity = np.full((2, 2), "C")
        states = np.zeros((2, 2), dtype=int)
        text = render_gantt(activity, states, worker_names=["alpha", "beta"])
        assert "alpha" in text and "beta" in text

    def test_end_to_end_with_engine(self):
        processors = [
            Processor(speed=i, capacity=5, availability=MarkovAvailabilityModel.always_up())
            for i in range(1, 4)
        ]
        platform = Platform(processors, ncom=1, tprog=1, tdata=1)
        application = Application(tasks_per_iteration=3, iterations=1)
        engine = SimulationEngine(
            platform, application, create_scheduler("IE"), seed=0, max_slots=100,
            record_activity=True,
        )
        result = engine.run()
        assert result.success
        text = render_gantt(engine.activity_matrix, engine.state_matrix)
        assert "P1" in text
        assert "C" in text  # some computation happened
