"""Tests for the bounded multi-port communication manager."""

import pytest

from repro.simulation.comm import CommunicationManager
from repro.simulation.state import WorkerRuntime
from repro.types import DOWN, RECLAIMED, UP


def make_runtime(worker_id, tasks=1, state=UP, has_program=False):
    runtime = WorkerRuntime(worker_id=worker_id, state=state, has_program=has_program)
    runtime.on_enroll(tasks)
    return runtime


class TestAllocate:
    def test_respects_ncom(self):
        manager = CommunicationManager(2)
        runtimes = [make_runtime(i) for i in range(4)]
        granted = manager.allocate(runtimes, tprog=2, tdata=1)
        assert granted == [0, 1]

    def test_skips_non_up_workers(self):
        manager = CommunicationManager(3)
        runtimes = [
            make_runtime(0, state=UP),
            make_runtime(1, state=RECLAIMED),
            make_runtime(2, state=DOWN),
            make_runtime(3, state=UP),
        ]
        granted = manager.allocate(runtimes, tprog=1, tdata=1)
        assert granted == [0, 3]

    def test_skips_workers_without_needs(self):
        manager = CommunicationManager(4)
        done = make_runtime(0, has_program=True)
        done.data_received = done.assigned_tasks
        pending = make_runtime(1)
        granted = manager.allocate([done, pending], tprog=2, tdata=1)
        assert granted == [1]

    def test_skips_unenrolled(self):
        manager = CommunicationManager(2)
        idle = WorkerRuntime(worker_id=0, state=UP)
        pending = make_runtime(1)
        assert manager.allocate([idle, pending], tprog=1, tdata=1) == [1]

    def test_sticky_channels(self):
        manager = CommunicationManager(2)
        runtimes = [make_runtime(i, tasks=2) for i in range(3)]
        first = manager.allocate(runtimes, tprog=2, tdata=1)
        assert first == [0, 1]
        # Worker 0 finishes all its communication; worker 2 should get the free
        # channel while worker 1 keeps its own (stickiness).
        runtimes[0].has_program = True
        runtimes[0].data_received = 2
        second = manager.allocate(runtimes, tprog=2, tdata=1)
        assert second == [1, 2]

    def test_empty_when_no_one_eligible(self):
        manager = CommunicationManager(2)
        assert manager.allocate([], tprog=1, tdata=1) == []

    def test_reset_clears_stickiness(self):
        manager = CommunicationManager(1)
        runtimes = [make_runtime(0, tasks=2), make_runtime(1, tasks=2)]
        assert manager.allocate(runtimes, tprog=1, tdata=1) == [0]
        manager.reset()
        assert manager.allocate(list(reversed(runtimes)), tprog=1, tdata=1) == [0]

    def test_invalid_ncom(self):
        with pytest.raises(ValueError):
            CommunicationManager(0)


class TestServe:
    def test_serve_advances_transfers(self):
        manager = CommunicationManager(2)
        runtimes = {0: make_runtime(0), 1: make_runtime(1, has_program=True)}
        served = manager.serve(runtimes, [0, 1], tprog=2, tdata=1)
        assert served == {0: "program", 1: "data"}
        assert runtimes[0].program_progress == 1
        assert runtimes[1].data_received == 1
