"""Tests for the simulation event log."""

from repro.simulation.events import EventKind, EventLog, SimulationEvent


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(0, EventKind.CONFIGURATION_CHANGED, old={}, new={"0": 1})
        log.record(3, EventKind.WORKER_FAILED, worker=2)
        log.record(4, EventKind.WORKER_FAILED, worker=1)
        assert len(log) == 3
        assert log.count(EventKind.WORKER_FAILED) == 2
        assert log.of_kind(EventKind.CONFIGURATION_CHANGED)[0].slot == 0
        assert log.last().slot == 4
        assert log.last(EventKind.CONFIGURATION_CHANGED).slot == 0

    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.record(0, EventKind.IDLE)
        assert len(log) == 0
        assert log.last() is None

    def test_iteration(self):
        log = EventLog()
        log.record(1, EventKind.COMPUTATION, progress=1)
        assert [event.kind for event in log] == [EventKind.COMPUTATION]
        assert isinstance(log.events[0], SimulationEvent)

    def test_last_of_missing_kind(self):
        log = EventLog()
        log.record(0, EventKind.IDLE)
        assert log.last(EventKind.RUN_COMPLETED) is None
