"""Tests for the Processor description."""

import pytest

from repro.availability import MarkovAvailabilityModel
from repro.exceptions import InvalidPlatformError
from repro.platform import Processor


@pytest.fixture
def availability():
    return MarkovAvailabilityModel.always_up()


class TestProcessor:
    def test_basic_construction(self, availability):
        proc = Processor(speed=3, capacity=2, availability=availability, name="P1")
        assert proc.speed == 3
        assert proc.capacity == 2
        assert proc.name == "P1"

    @pytest.mark.parametrize("speed", [0, -1, 1.5, True])
    def test_invalid_speed(self, availability, speed):
        with pytest.raises(InvalidPlatformError):
            Processor(speed=speed, capacity=1, availability=availability)

    @pytest.mark.parametrize("capacity", [0, -2, 2.5, False])
    def test_invalid_capacity(self, availability, capacity):
        with pytest.raises(InvalidPlatformError):
            Processor(speed=1, capacity=capacity, availability=availability)

    def test_invalid_availability(self):
        with pytest.raises(InvalidPlatformError):
            Processor(speed=1, capacity=1, availability="not a model")

    def test_task_slots(self, availability):
        proc = Processor(speed=4, capacity=3, availability=availability)
        assert proc.task_slots(0) == 0
        assert proc.task_slots(2) == 8

    def test_task_slots_negative(self, availability):
        with pytest.raises(ValueError):
            Processor(speed=1, capacity=1, availability=availability).task_slots(-1)

    def test_with_name(self, availability):
        proc = Processor(speed=1, capacity=1, availability=availability)
        named = proc.with_name("fast")
        assert named.name == "fast"
        assert proc.name is None  # original untouched (frozen dataclass)

    def test_describe(self, availability):
        proc = Processor(speed=2, capacity=1, availability=availability, name="Px")
        text = proc.describe()
        assert "Px" in text and "w=2" in text
