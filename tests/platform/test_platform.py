"""Tests for the Platform model (bounded multi-port master, transfer times)."""
import pytest

from repro.availability import MarkovAvailabilityModel, TraceAvailabilityModel
from repro.exceptions import InvalidPlatformError
from repro.platform import Platform, Processor


def make_processors(count=3, speed=1, capacity=2):
    return [
        Processor(speed=speed, capacity=capacity, availability=MarkovAvailabilityModel.always_up())
        for _ in range(count)
    ]


class TestConstruction:
    def test_basic(self):
        platform = Platform(make_processors(3), ncom=2, tprog=5, tdata=1)
        assert platform.num_processors == 3
        assert platform.ncom == 2
        assert platform.tprog == 5
        assert platform.tdata == 1
        assert len(platform) == 3

    def test_names_assigned(self):
        platform = Platform(make_processors(2), ncom=1, tprog=0, tdata=0)
        assert [p.name for p in platform] == ["P1", "P2"]

    def test_empty_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([], ncom=1, tprog=0, tdata=0)

    @pytest.mark.parametrize("kwargs", [
        {"ncom": 0, "tprog": 0, "tdata": 0},
        {"ncom": 1, "tprog": -1, "tdata": 0},
        {"ncom": 1, "tprog": 0, "tdata": -2},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(InvalidPlatformError):
            Platform(make_processors(1), **kwargs)

    def test_from_bandwidth(self):
        platform = Platform.from_bandwidth(
            make_processors(4),
            master_bandwidth=100.0,
            worker_bandwidth=10.0,
            program_size=55.0,
            data_size=10.0,
        )
        assert platform.ncom == 10
        assert platform.tprog == 6  # ceil(55 / 10)
        assert platform.tdata == 1

    def test_from_bandwidth_worker_exceeds_master(self):
        with pytest.raises(InvalidPlatformError):
            Platform.from_bandwidth(
                make_processors(1),
                master_bandwidth=5.0,
                worker_bandwidth=10.0,
                program_size=1.0,
                data_size=1.0,
            )

    def test_from_bandwidth_zero_sizes(self):
        platform = Platform.from_bandwidth(
            make_processors(1),
            master_bandwidth=10.0,
            worker_bandwidth=10.0,
            program_size=0.0,
            data_size=0.0,
        )
        assert platform.tprog == 0 and platform.tdata == 0


class TestAccessors:
    def test_speeds_and_capacities(self):
        processors = [
            Processor(speed=s, capacity=c, availability=MarkovAvailabilityModel.always_up())
            for s, c in [(1, 1), (2, 3), (5, 2)]
        ]
        platform = Platform(processors, ncom=1, tprog=0, tdata=0)
        assert platform.speeds().tolist() == [1, 2, 5]
        assert platform.capacities().tolist() == [1, 3, 2]
        assert platform.total_capacity() == 6

    def test_can_execute_and_validate(self):
        platform = Platform(make_processors(2, capacity=2), ncom=1, tprog=0, tdata=0)
        assert platform.can_execute(4)
        assert not platform.can_execute(5)
        platform.validate_for_tasks(4)
        with pytest.raises(InvalidPlatformError):
            platform.validate_for_tasks(5)

    def test_communication_slots(self):
        platform = Platform(make_processors(1), ncom=1, tprog=5, tdata=2)
        assert platform.communication_slots(3, needs_program=True) == 11
        assert platform.communication_slots(3, needs_program=False) == 6
        assert platform.communication_slots(0, needs_program=False) == 0
        with pytest.raises(ValueError):
            platform.communication_slots(-1, needs_program=True)

    def test_markov_matrices(self):
        platform = Platform(make_processors(2), ncom=1, tprog=0, tdata=0)
        matrices = platform.markov_matrices()
        assert len(matrices) == 2
        assert matrices[0].shape == (3, 3)

    def test_markov_models_from_trace_availability(self):
        trace_proc = Processor(
            speed=1, capacity=1, availability=TraceAvailabilityModel("uuur" * 10)
        )
        platform = Platform([trace_proc], ncom=1, tprog=0, tdata=0)
        models = platform.markov_models()
        assert isinstance(models[0], MarkovAvailabilityModel)


class TestSerialisation:
    def test_round_trip_markov(self):
        platform = Platform(make_processors(2, speed=3), ncom=4, tprog=2, tdata=1)
        clone = Platform.from_dict(platform.to_dict())
        assert clone.num_processors == 2
        assert clone.ncom == 4
        assert clone.processor(0).speed == 3

    def test_round_trip_trace(self):
        proc = Processor(speed=1, capacity=1, availability=TraceAvailabilityModel("uud"))
        platform = Platform([proc], ncom=1, tprog=0, tdata=0)
        clone = Platform.from_dict(platform.to_dict())
        assert isinstance(clone.processor(0).availability, TraceAvailabilityModel)

    def test_describe(self):
        platform = Platform(make_processors(2), ncom=1, tprog=0, tdata=0)
        assert "p=2" in platform.describe()
