"""Tests for platform builders (paper methodology and uniform platforms)."""

import numpy as np
import pytest

from repro.availability import MarkovAvailabilityModel
from repro.exceptions import InvalidPlatformError
from repro.platform import PlatformSpec, paper_platform, uniform_platform


class TestPlatformSpec:
    def test_defaults_match_paper(self):
        spec = PlatformSpec()
        assert spec.num_processors == 20
        assert spec.tdata == spec.wmin
        assert spec.tprog == 5 * spec.wmin

    def test_derived_times_scale_with_wmin(self):
        spec = PlatformSpec(wmin=4)
        assert spec.tdata == 4
        assert spec.tprog == 20

    @pytest.mark.parametrize("kwargs", [
        {"num_processors": 0}, {"ncom": 0}, {"wmin": 0}, {"speed_factor": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidPlatformError):
            PlatformSpec(**kwargs)


class TestPaperPlatform:
    def test_structure(self):
        spec = PlatformSpec(num_processors=12, ncom=5, wmin=2)
        platform = paper_platform(spec, num_tasks=5, seed=0)
        assert platform.num_processors == 12
        assert platform.ncom == 5
        assert platform.tdata == 2
        assert platform.tprog == 10

    def test_speeds_in_range(self):
        spec = PlatformSpec(num_processors=30, wmin=3)
        platform = paper_platform(spec, num_tasks=5, seed=1)
        speeds = platform.speeds()
        assert speeds.min() >= 3
        assert speeds.max() <= 30

    def test_capacity_defaults_to_m(self):
        platform = paper_platform(PlatformSpec(num_processors=4), num_tasks=7, seed=2)
        assert platform.capacities().tolist() == [7, 7, 7, 7]

    def test_capacity_override(self):
        platform = paper_platform(
            PlatformSpec(num_processors=4, capacity=1), num_tasks=7, seed=2
        )
        assert platform.capacities().tolist() == [1, 1, 1, 1]

    def test_deterministic_given_seed(self):
        spec = PlatformSpec(num_processors=6)
        a = paper_platform(spec, num_tasks=5, seed=9)
        b = paper_platform(spec, num_tasks=5, seed=9)
        assert a.speeds().tolist() == b.speeds().tolist()
        assert all(
            np.allclose(x.availability.matrix, y.availability.matrix)
            for x, y in zip(a.processors, b.processors)
        )

    def test_stay_probabilities_in_paper_range(self):
        platform = paper_platform(PlatformSpec(num_processors=10), num_tasks=5, seed=4)
        for proc in platform:
            diag = np.diag(proc.availability.matrix)
            assert np.all(diag >= 0.90) and np.all(diag <= 0.99)

    def test_invalid_num_tasks(self):
        with pytest.raises(InvalidPlatformError):
            paper_platform(PlatformSpec(), num_tasks=0, seed=0)


class TestUniformPlatform:
    def test_default_reliable(self):
        platform = uniform_platform(3, speed=2, capacity=1)
        assert platform.num_processors == 3
        assert platform.ncom == 3
        for proc in platform:
            assert not proc.availability.can_fail()

    def test_shared_availability(self):
        model = MarkovAvailabilityModel.always_up()
        platform = uniform_platform(4, availability=model)
        assert all(proc.availability is model for proc in platform)

    def test_per_processor_availabilities(self):
        models = [MarkovAvailabilityModel.always_up() for _ in range(2)]
        platform = uniform_platform(2, availabilities=models)
        assert platform.processor(1).availability is models[1]

    def test_availabilities_length_mismatch(self):
        with pytest.raises(InvalidPlatformError):
            uniform_platform(3, availabilities=[MarkovAvailabilityModel.always_up()])

    def test_both_availability_arguments_rejected(self):
        model = MarkovAvailabilityModel.always_up()
        with pytest.raises(InvalidPlatformError):
            uniform_platform(2, availability=model, availabilities=[model, model])

    def test_zero_processors_rejected(self):
        with pytest.raises(InvalidPlatformError):
            uniform_platform(0)
