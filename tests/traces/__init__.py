"""Tests for the repro.traces subsystem."""
