"""Tests for the calibrated-model fitters: recovery, GoF, edge cases."""

import numpy as np
import pytest

from repro.availability.diurnal import DiurnalAvailabilityModel, DiurnalPhase
from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.semi_markov import SemiMarkovAvailabilityModel
from repro.availability.trace import AvailabilityTrace
from repro.traces.fit import (
    FIT_KINDS,
    TraceFitError,
    fit_diurnal,
    fit_markov,
    fit_model,
    fit_per_processor,
    fit_semi_markov,
    ks_distance,
)

MATRIX = np.array(
    [
        [0.94, 0.04, 0.02],
        [0.30, 0.65, 0.05],
        [0.25, 0.05, 0.70],
    ]
)


def sample_rows(model_factory, num_rows, length, seed0=100):
    return AvailabilityTrace(
        np.vstack(
            [model_factory().sample_trajectory(length, seed0 + row) for row in range(num_rows)]
        )
    )


class TestKsDistance:
    def test_perfect_fit_is_small(self):
        samples = [1, 1, 2, 2, 3, 3]

        def ecdf(k):
            k = np.asarray(k, dtype=float)
            return np.select([k >= 3, k >= 2, k >= 1], [1.0, 2 / 3, 1 / 3], 0.0)

        assert ks_distance(samples, ecdf) == pytest.approx(0.0)

    def test_empty_is_nan(self):
        assert np.isnan(ks_distance([], lambda k: np.asarray(k) * 0.0))

    def test_bad_fit_is_large(self):
        assert ks_distance([10, 10, 10], lambda k: np.minimum(np.asarray(k) / 1000, 1)) > 0.9


class TestFitMarkov:
    def test_recovers_matrix(self):
        trace = sample_rows(lambda: MarkovAvailabilityModel(MATRIX), 6, 20_000)
        fitted = fit_markov(trace)
        assert np.allclose(
            np.asarray(fitted.parameters["matrix"]), MATRIX, atol=0.02
        )
        assert fitted.num_transitions == 6 * (20_000 - 1)
        assert fitted.log_likelihood < 0

    def test_fit_generate_fit_round_trip(self):
        first = fit_markov(sample_rows(lambda: MarkovAvailabilityModel(MATRIX), 4, 15_000))
        regenerated = sample_rows(lambda: first.instantiate(), 4, 15_000, seed0=500)
        second = fit_markov(regenerated)
        assert np.allclose(
            np.asarray(first.parameters["matrix"]),
            np.asarray(second.parameters["matrix"]),
            atol=0.02,
        )

    def test_geometric_sojourns_give_small_ks(self):
        trace = sample_rows(lambda: MarkovAvailabilityModel(MATRIX), 4, 20_000)
        fitted = fit_markov(trace)
        # Markov data really has geometric sojourns: the KS diagnostic is small.
        assert fitted.ks["UP"] < 0.05

    def test_instances_are_fresh(self):
        trace = sample_rows(lambda: MarkovAvailabilityModel(MATRIX), 2, 500)
        fitted = fit_markov(trace)
        models = fitted.make_models(3)
        assert len({id(model) for model in models}) == 3

    def test_constant_trace_rejected(self):
        with pytest.raises(TraceFitError):
            fit_markov(np.zeros((2, 1), dtype=np.int8))

    def test_accepts_single_sequence_and_strings(self):
        fitted = fit_markov(list("uurrdduu" * 20))
        assert fitted.kind == "markov"


class TestFitSemiMarkov:
    def make_reference(self):
        return SemiMarkovAvailabilityModel.desktop_grid(
            up_shape=0.65, mean_up=30.0, mean_reclaimed=4.0, mean_down=12.0,
            reclaim_fraction=0.75,
        )

    def test_recovers_sojourn_parameters(self):
        trace = sample_rows(self.make_reference, 8, 30_000)
        fitted = fit_semi_markov(trace)
        up = fitted.parameters["up"]
        assert up["family"] == "weibull"
        # Slot-ceiling biases the continuous parameters slightly; the shape
        # and the implied mean must land near the generator's.
        assert up["shape"] == pytest.approx(0.65, rel=0.15)
        mean_up = fitted.sojourns[0].distribution.mean()
        assert mean_up == pytest.approx(30.0, rel=0.15)
        jump = np.asarray(fitted.parameters["jump_matrix"])
        assert jump[0, 1] == pytest.approx(0.75, abs=0.05)
        assert np.all(np.abs(np.diag(jump)) < 1e-12)

    def test_fit_generate_fit_round_trip(self):
        first = fit_semi_markov(sample_rows(self.make_reference, 6, 25_000))
        regenerated = sample_rows(lambda: first.instantiate(), 6, 25_000, seed0=700)
        second = fit_semi_markov(regenerated)
        for state in ("up", "reclaimed", "down"):
            before = first.parameters[state]
            after = second.parameters[state]
            assert before["family"] == after["family"]
        assert first.sojourns[0].distribution.mean() == pytest.approx(
            second.sojourns[0].distribution.mean(), rel=0.15
        )

    def test_semi_markov_beats_markov_on_heavy_tails(self):
        trace = sample_rows(self.make_reference, 6, 20_000)
        markov = fit_markov(trace)
        semi = fit_semi_markov(trace)
        # The KS distance of the UP-interval distribution is the signature
        # of the "flawed Markov fit" the paper's conclusion discusses.
        assert semi.ks["UP"] < markov.ks["UP"]

    def test_family_override_and_unknown_family(self):
        trace = sample_rows(self.make_reference, 2, 5_000)
        fitted = fit_semi_markov(trace, families={0: "geometric"})
        assert fitted.parameters["up"]["family"] == "geometric"
        with pytest.raises(TraceFitError, match="family"):
            fit_semi_markov(trace, families={0: "zipf"})

    def test_constant_trace_rejected(self):
        with pytest.raises(TraceFitError):
            fit_semi_markov(list("uuuuuu"))


class TestFitDiurnal:
    def make_reference(self, day_length=48):
        quiet = np.array([[0.995, 0.004, 0.001], [0.5, 0.48, 0.02], [0.3, 0.1, 0.6]])
        busy = np.array([[0.85, 0.12, 0.03], [0.15, 0.80, 0.05], [0.30, 0.10, 0.60]])
        half = day_length // 2
        return DiurnalAvailabilityModel(
            [DiurnalPhase("busy", half, busy), DiurnalPhase("quiet", half, quiet)]
        )

    def test_recovers_phase_matrices(self):
        day_length = 48
        trace = sample_rows(lambda: self.make_reference(day_length), 8, 40_000)
        fitted = fit_diurnal(trace, day_length=day_length, num_phases=2)
        matrices = np.asarray(fitted.parameters["phase_matrices"])
        reference = self.make_reference(day_length)
        for index, phase in enumerate(reference.phases):
            assert np.allclose(matrices[index], phase.matrix, atol=0.03), (
                f"phase {index} not recovered"
            )

    def test_fit_generate_fit_round_trip(self):
        day_length = 48
        first = fit_diurnal(
            sample_rows(lambda: self.make_reference(day_length), 6, 30_000),
            day_length=day_length, num_phases=2,
        )
        regenerated = sample_rows(lambda: first.instantiate(), 6, 30_000, seed0=900)
        second = fit_diurnal(regenerated, day_length=day_length, num_phases=2)
        assert np.allclose(
            np.asarray(first.parameters["phase_matrices"]),
            np.asarray(second.parameters["phase_matrices"]),
            atol=0.03,
        )

    def test_diurnal_loglik_beats_homogeneous_on_diurnal_data(self):
        trace = sample_rows(lambda: self.make_reference(48), 4, 20_000)
        markov = fit_markov(trace)
        diurnal = fit_diurnal(trace, day_length=48, num_phases=2)
        assert diurnal.log_likelihood > markov.log_likelihood

    def test_invalid_folding(self):
        with pytest.raises(TraceFitError):
            fit_diurnal(list("urdu" * 10), day_length=2, num_phases=4)

    def test_constant_trace_rejected(self):
        with pytest.raises(TraceFitError):
            fit_diurnal(np.zeros((1, 1), dtype=np.int8))


class TestDispatch:
    def test_fit_model_kinds(self):
        trace = sample_rows(
            lambda: MarkovAvailabilityModel(MATRIX), 2, 3_000
        )
        for kind in ("markov", "semi-markov", "diurnal", "degradation"):
            fitted = fit_model(kind, trace)
            assert fitted.kind == kind
            summary = fitted.summary()
            assert summary["kind"] == kind
            assert {"UP", "RECLAIMED", "DOWN"} <= set(summary["ks"])
        # "correlated" needs multi-worker outage structure that independent
        # chains don't have; its recovery lives in test_hazard_fit.py.
        with pytest.raises(TraceFitError):
            fit_model("correlated", trace)

    def test_unknown_kind(self):
        with pytest.raises(TraceFitError, match="unknown fit kind"):
            fit_model("fourier", list("urdu"))

    def test_fit_per_processor(self):
        trace = sample_rows(lambda: MarkovAvailabilityModel(MATRIX), 3, 2_000)
        fits = fit_per_processor(trace, "markov")
        assert len(fits) == 3
        matrices = [np.asarray(fit.parameters["matrix"]) for fit in fits]
        assert not np.allclose(matrices[0], matrices[1])


class TestCensoring:
    def test_fitters_exclude_edge_censored_runs(self):
        # One giant censored UP run at each edge; the only complete UP runs
        # have length 2.  A censoring-aware fit must not see the edges.
        sequence = list("u" * 500 + "r" + "uu" + "r" + "uu" + "r" + "u" * 500)
        fitted = fit_semi_markov(sequence, families={0: "geometric"})
        assert fitted.sojourns[0].distribution.mean() == pytest.approx(2.0)
        biased = fit_semi_markov(sequence, families={0: "geometric"}, censor_edges=False)
        assert biased.sojourns[0].distribution.mean() > 100
