"""Shared fixtures for the trace-subsystem tests."""

from __future__ import annotations

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def example_traces_dir() -> Path:
    """The shipped example dataset directory (examples/traces)."""
    directory = REPO_ROOT / "examples" / "traces"
    assert directory.is_dir(), "examples/traces must ship with the repository"
    return directory


@pytest.fixture(scope="session")
def example_campaign_spec() -> Path:
    """The shipped trace-driven campaign spec."""
    path = REPO_ROOT / "examples" / "campaign_traces.toml"
    assert path.is_file()
    return path
