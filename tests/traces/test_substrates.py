"""Integration of the trace substrates with the registry, specs and campaigns.

Covers the acceptance criteria of the trace subsystem: one recorded dataset
reachable three ways through the component grammar (bootstrap replay,
fitted-Markov, fitted-semi-Markov), golden-seed reproducibility of a
bootstrap-resampled campaign through spec -> store -> tables, and the
block-sampler fast path agreeing with the per-slot driver on trace replay.
"""

import numpy as np
import pytest

from repro.application import Application
from repro.availability.registry import AVAILABILITY_MODELS, model_factory_for
from repro.exceptions import ExperimentError
from repro.experiments.runner import run_campaign_spec
from repro.experiments.scenarios import AvailabilitySpec
from repro.experiments.spec import load_spec
from repro.experiments.store import ResultStore
from repro.experiments.tables import format_spec_report
from repro.simulation import SimulationEngine


def availability(kind, **parameters):
    return AvailabilitySpec(kind=kind, parameters=tuple(parameters.items()))


class TestRegistry:
    def test_substrates_registered(self):
        names = AVAILABILITY_MODELS.names()
        for kind in ("trace-catalog", "trace-bootstrap", "fitted"):
            assert kind in names

    def test_three_ways_to_name_one_dataset(self, example_traces_dir):
        """Bootstrap replay, fitted-Markov and fitted-semi-Markov substrates."""
        path = str(example_traces_dir / "desktop_week.csv")
        specs = [
            availability("trace-bootstrap", path=path, slot=900),
            availability("fitted", model="markov", path=path, slot=900),
            availability("fitted", model="semi-markov", path=path, slot=900),
        ]
        for spec in specs:
            models = model_factory_for(spec)(np.random.default_rng(0), 4)
            assert len(models) == 4

    def test_catalog_substrate(self, example_traces_dir):
        spec = availability(
            "trace-catalog", path=str(example_traces_dir), dataset="desktop_week"
        )
        models = model_factory_for(spec)(np.random.default_rng(0), 14)
        # Round-robin assignment over the 12 recorded machines.
        assert np.array_equal(models[0].sequence, models[12].sequence)

    def test_catalog_requires_dataset(self, example_traces_dir):
        spec = availability("trace-catalog", path=str(example_traces_dir))
        with pytest.raises(ExperimentError, match="dataset"):
            model_factory_for(spec)(np.random.default_rng(0), 2)

    def test_fitted_requires_known_model(self, example_traces_dir):
        spec = availability(
            "fitted", model="fourier", path=str(example_traces_dir / "desktop_week.csv"),
            slot=900,
        )
        with pytest.raises(ExperimentError, match="model"):
            model_factory_for(spec)

    def test_catalog_substrate_honours_spec_discretisation(self, tmp_path):
        # Regression: spec-side slot/gap/overlap used to be ignored for
        # catalog directories without a catalog.json entry.
        (tmp_path / "rec.csv").write_text("n,0,1800,u\nn,1800,2700,d\n")
        spec = availability(
            "trace-catalog", path=str(tmp_path), dataset="rec", slot=900
        )
        models = model_factory_for(spec)(np.random.default_rng(0), 1)
        assert models[0].sequence.size == 3

    def test_fitted_substrate_fits_once_per_dataset(self, example_traces_dir, monkeypatch):
        # Regression: the fit used to be recomputed on every scenario build.
        import repro.availability.registry as registry
        import repro.traces.fit as fit

        registry._FIT_CACHE.clear()
        calls = []
        real_fit_model = fit.fit_model
        monkeypatch.setattr(
            fit, "fit_model",
            lambda *args, **kwargs: calls.append(1) or real_fit_model(*args, **kwargs),
        )
        spec = availability(
            "fitted", model="markov",
            path=str(example_traces_dir / "desktop_week.csv"), slot=900,
        )
        for _ in range(3):  # three scenario platform builds
            model_factory_for(spec)(np.random.default_rng(0), 2)
        assert len(calls) == 1

    def test_fitted_models_are_independent_instances(self, example_traces_dir):
        spec = availability(
            "fitted", model="semi-markov",
            path=str(example_traces_dir / "desktop_week.csv"), slot=900,
        )
        models = model_factory_for(spec)(np.random.default_rng(1), 3)
        assert len({id(model) for model in models}) == 3

    def test_unknown_parameter_rejected_by_spec(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            availability("trace-bootstrap", path="x.csv", typo=1)

    def test_kind_alias_for_fitted_model(self, example_traces_dir):
        # "kind" is an accepted alias of the "model" parameter and
        # canonicalizes to the registered spelling.
        spec = AvailabilitySpec(
            kind="fitted",
            parameters=(
                ("kind", "markov"),
                ("path", str(example_traces_dir / "desktop_week.csv")),
                ("slot", 900),
            ),
        )
        assert spec.get("model") == "markov"


class TestSpecPathResolution:
    def test_relative_paths_resolve_against_spec_dir(self, example_campaign_spec):
        spec = load_spec(example_campaign_spec)
        runtime = spec._runtime_availability()
        assert runtime is not None
        path = runtime.get("path")
        assert str(path).endswith("desktop_week.csv")
        assert str(example_campaign_spec.parent) in str(path)

    def test_hash_ignores_base_dir(self, example_campaign_spec, tmp_path):
        import shutil

        spec = load_spec(example_campaign_spec)
        copy_dir = tmp_path / "elsewhere"
        copy_dir.mkdir()
        shutil.copy(example_campaign_spec, copy_dir / "campaign_traces.toml")
        shutil.copytree(
            example_campaign_spec.parent / "traces", copy_dir / "traces"
        )
        relocated = load_spec(copy_dir / "campaign_traces.toml")
        assert relocated.spec_hash() == spec.spec_hash()


class TestGoldenCampaign:
    """Golden-seed pinning of the bootstrap-resampled example campaign.

    The pinned values were produced by the shipped spec at the time the
    trace subsystem landed; any change means recorded-trace campaigns are no
    longer reproducible across versions (or the example dataset changed —
    regenerate deliberately, then update both).
    """

    GOLDEN = {
        (0, "IE", 0): 35,
        (1, "RANDOM", 0): 110,
        (2, "IE", 1): 35,
        (3, "RANDOM", 1): 167,
    }

    @pytest.fixture(scope="class")
    def campaign_results(self, example_campaign_spec, tmp_path_factory):
        spec = load_spec(example_campaign_spec)
        store_dir = tmp_path_factory.mktemp("store") / "golden"
        with ResultStore.create(store_dir, spec) as store:
            run_campaign_spec(spec, store=store)
            records = store.records()
            results = store.results()
        return spec, records, results

    def test_golden_makespans(self, campaign_results):
        _, records, _ = campaign_results
        observed = {
            (record["cell"], record["heuristic"], record["trial_index"]): record["makespan"]
            for record in records
        }
        assert observed == self.GOLDEN

    def test_resume_is_bit_identical(self, example_campaign_spec, campaign_results, tmp_path):
        spec = load_spec(example_campaign_spec)
        _, full_records, _ = campaign_results
        with ResultStore.create(tmp_path / "resumed", spec) as store:
            run_campaign_spec(spec, store=store, max_cells=2)
            run_campaign_spec(spec, store=store)
            resumed = store.records()

        def stable(records):
            return [
                {key: value for key, value in record.items() if key != "wall_time_seconds"}
                for record in records
            ]

        assert stable(resumed) == stable(full_records)

    def test_tables_render(self, campaign_results):
        spec, _, results = campaign_results
        report = format_spec_report(results, spec)
        assert "IE" in report and "RANDOM" in report


class TestSampleBlockDifferential:
    """Trace replay through the block sampler equals the per-slot driver."""

    def test_engine_block_vs_perslot_on_bootstrap_substrate(self, example_traces_dir):
        from repro.platform.builders import PlatformSpec, availability_platform
        from repro.scheduling.registry import create_scheduler

        spec = availability(
            "trace-bootstrap",
            path=str(example_traces_dir / "desktop_week.csv"),
            slot=900, block=96,
        )
        results = {}
        for sampler in ("block", "perslot"):
            factory = model_factory_for(spec)
            platform = availability_platform(
                PlatformSpec(num_processors=8, ncom=5, wmin=1),
                num_tasks=4, seed=42, model_factory=factory,
            )
            engine = SimulationEngine(
                platform,
                Application(tasks_per_iteration=4, iterations=3),
                create_scheduler("IE"),
                seed=17,
                max_slots=30_000,
                sampler=sampler,
            )
            result = engine.run()
            results[sampler] = (result.makespan, result.completed_iterations, result.success)
        assert results["block"] == results["perslot"]
