"""Fit → generate → fit recovery for the hazard fitters.

``fit_correlated`` must rediscover the outage-domain structure (membership,
event rate, outage duration) planted by a :class:`DomainOutageProcess`
overlay, and ``fit_degradation`` the wear parameters of a
:class:`DegradationAvailabilityModel` — each within statistical tolerances
calibrated on the generating configurations below.
"""

import numpy as np
import pytest

from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.trace import AvailabilityTrace
from repro.hazards import DegradationAvailabilityModel, DomainOutageProcess
from repro.hazards.degradation import sojourn_distribution
from repro.traces.fit import (
    FIT_KINDS,
    TraceFitError,
    fit_correlated,
    fit_degradation,
    fit_model,
)
from repro.traces.resample import fitted_trace
from repro.utils.rng import spawn_generators

pytestmark = pytest.mark.slow

#: A quiet Markov base (high availability, short outages).  The default
#: Section-V matrix spends ~a third of its slots DOWN, which buries the
#: correlated-event signal in coincidental co-onsets; a realistic desktop
#: fleet with rare independent failures is the regime the fitter targets.
QUIET_BASE = np.array(
    [
        [0.99, 0.006, 0.004],
        [0.15, 0.85, 0.0],
        [0.10, 0.0, 0.90],
    ]
)

NUM_WORKERS = 20
HORIZON = 20_000


def correlated_dataset(seed=7, domains=4, rate=0.002, mean_outage=8.0):
    generators = spawn_generators(seed, NUM_WORKERS + 1)
    rows = [
        MarkovAvailabilityModel(QUIET_BASE).sample_trajectory(HORIZON, generators[index])
        for index in range(NUM_WORKERS)
    ]
    matrix = np.vstack(rows)
    hazard = DomainOutageProcess(
        NUM_WORKERS, domains=domains, rate=rate, mean_outage=mean_outage
    )
    hazard.reset(generators[-1])
    hazard.overlay(0, matrix)
    return AvailabilityTrace(matrix)


def degradation_dataset(seed=100, workers=10, horizon=15_000):
    rows = []
    for index in range(workers):
        model = DegradationAvailabilityModel(
            wear_rate=0.1,
            pm_level=3,
            fail_level=6,
            compliance=0.7,
            pm_time=sojourn_distribution("lognormal", 5.0),
            cm_time=sojourn_distribution("lognormal", 20.0),
        )
        rows.append(model.sample_trajectory(horizon, seed + index))
    return AvailabilityTrace(np.vstack(rows))


class TestCorrelatedRecovery:
    def test_domain_structure_is_recovered(self):
        fitted = fit_correlated(correlated_dataset())
        parameters = fitted.parameters
        assert parameters["domains"] == 4
        # Round-robin membership: domain d holds workers {d, d+4, d+8, ...}.
        members = sorted(sorted(group) for group in parameters["members"])
        expected = sorted(
            sorted(range(first, NUM_WORKERS, 4)) for first in range(4)
        )
        assert members == expected
        assert 0.0015 <= parameters["rate"] <= 0.0030
        assert 5.0 <= parameters["mean_outage"] <= 11.0
        assert parameters["num_events"] > 50
        assert set(fitted.ks) >= {"duration", "gap", "UP", "RECLAIMED", "DOWN"}
        assert fitted.ks["duration"] < 0.35

    def test_hazard_builder_reconstructs_the_overlay(self):
        fitted = fit_correlated(correlated_dataset())
        assert fitted.hazard_builder is not None
        hazard = fitted.hazard_builder(NUM_WORKERS)
        assert isinstance(hazard, DomainOutageProcess)
        assert hazard.domains == 4

    def test_round_trip_through_fitted_trace(self):
        """fit → generate → fit keeps the domain structure stable."""
        regenerated = fitted_trace(
            "correlated", correlated_dataset(), NUM_WORKERS, HORIZON, seed=3
        )
        refit = fit_correlated(regenerated)
        assert refit.parameters["domains"] == 4
        assert 0.0012 <= refit.parameters["rate"] <= 0.0035

    def test_uncorrelated_data_raises(self):
        generators = spawn_generators(21, NUM_WORKERS)
        rows = [
            MarkovAvailabilityModel(QUIET_BASE).sample_trajectory(2000, generator)
            for generator in generators
        ]
        with pytest.raises(TraceFitError):
            fit_correlated(AvailabilityTrace(np.vstack(rows)))

    def test_single_row_raises(self):
        with pytest.raises(TraceFitError):
            fit_correlated(AvailabilityTrace(np.zeros((1, 100), dtype=np.int8)))


class TestDegradationRecovery:
    def test_wear_parameters_are_recovered(self):
        fitted = fit_degradation(degradation_dataset(), pm_level=3, fail_level=6)
        parameters = fitted.parameters
        assert 0.08 <= parameters["wear_rate"] <= 0.12
        assert 0.6 <= parameters["compliance"] <= 0.8
        assert parameters["reclaimed"]["family"] == "lognormal"
        assert parameters["down"]["family"] == "lognormal"
        # PM events dominate at compliance 0.7 over a 3-level window.
        assert parameters["num_pm"] > parameters["num_cm"] > 0

    def test_instantiate_round_trips(self):
        fitted = fit_degradation(degradation_dataset(), pm_level=3, fail_level=6)
        model = fitted.instantiate()
        assert isinstance(model, DegradationAvailabilityModel)
        refit = fit_degradation(
            fitted_trace("degradation", degradation_dataset(), 10, 15_000, seed=5),
            pm_level=3,
            fail_level=6,
        )
        assert 0.08 <= refit.parameters["wear_rate"] <= 0.12


class TestDispatch:
    def test_fit_kinds_include_the_hazard_families(self):
        assert "correlated" in FIT_KINDS
        assert "degradation" in FIT_KINDS

    def test_fit_model_dispatches(self):
        dataset = degradation_dataset(workers=4, horizon=4000)
        direct = fit_degradation(dataset, pm_level=3, fail_level=6)
        routed = fit_model("degradation", dataset, pm_level=3, fail_level=6)
        assert routed.kind == direct.kind == "degradation"
        assert routed.parameters["wear_rate"] == direct.parameters["wear_rate"]

    def test_fitted_substrate_carries_the_hazard_factory(self, tmp_path):
        """The registry's fitted substrate re-attaches the fitted overlay."""
        from repro.availability.registry import model_factory_for
        from repro.experiments.scenarios import AvailabilitySpec
        from repro.traces.formats import write_compact

        path = tmp_path / "correlated.trace"
        write_compact(correlated_dataset(), path)
        spec = AvailabilitySpec(
            kind="fitted",
            parameters=(("model", "correlated"), ("path", str(path))),
        )
        factory = model_factory_for(spec)
        hazard = factory.hazard_factory(NUM_WORKERS)
        assert isinstance(hazard, DomainOutageProcess)
        assert hazard.domains == 4
