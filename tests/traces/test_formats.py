"""Tests for trace ingestion: interval CSV, JSONL events, compact strings."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.trace import AvailabilityTrace
from repro.traces.formats import (
    TraceCatalog,
    TraceFormatError,
    load_compact,
    load_interval_csv,
    load_jsonl_events,
    load_trace,
    trace_from_intervals,
    write_interval_csv,
    write_jsonl_events,
    write_trace,
)

ROWS = st.lists(
    st.text(alphabet="urd", min_size=1, max_size=40), min_size=1, max_size=6
).map(lambda rows: [row.ljust(max(len(r) for r in rows), row[-1]) for row in rows])


class TestTraceFromIntervals:
    def test_basic(self):
        trace = trace_from_intervals(
            [("a", 0, 3, "u"), ("a", 3, 5, "r"), ("b", 0, 5, "d")]
        )
        assert trace.to_strings() == ["uuurr", "ddddd"]

    def test_nodes_sorted_by_name(self):
        trace = trace_from_intervals([("b", 0, 2, "r"), ("a", 0, 2, "u")])
        assert trace.to_strings() == ["uu", "rr"]

    def test_slot_duration_scales_times(self):
        trace = trace_from_intervals(
            [("n", 0, 1800, "u"), ("n", 1800, 2700, "d")], slot_duration=900
        )
        assert trace.to_strings() == ["uud"]

    def test_boundary_slot_goes_to_majority_interval(self):
        # [0, 4.6) and [4.6, 9): slot 4 is mostly covered by the first.
        trace = trace_from_intervals([("n", 0, 4.6, "u"), ("n", 4.6, 9, "r")])
        assert trace.to_strings() == ["uuuuurrrr"]

    def test_gap_down_default(self):
        trace = trace_from_intervals([("n", 0, 2, "u"), ("n", 4, 6, "u")])
        assert trace.to_strings() == ["uudduu"]

    def test_gap_hold(self):
        trace = trace_from_intervals(
            [("n", 0, 2, "u"), ("n", 4, 6, "r")], gap="hold"
        )
        assert trace.to_strings() == ["uuuurr"]

    def test_gap_hold_leading_gap_is_down(self):
        trace = trace_from_intervals([("n", 2, 4, "u")], gap="hold")
        assert trace.to_strings() == ["dduu"]

    def test_gap_error(self):
        with pytest.raises(TraceFormatError, match="covered by"):
            trace_from_intervals([("n", 0, 2, "u"), ("n", 4, 6, "u")], gap="error")

    def test_overlap_error_default(self):
        with pytest.raises(TraceFormatError, match="overlapping"):
            trace_from_intervals([("n", 0, 4, "u"), ("n", 2, 6, "r")])

    def test_overlap_first_and_last(self):
        records = [("n", 0, 4, "u"), ("n", 2, 6, "r")]
        assert trace_from_intervals(records, overlap="first").to_strings() == ["uuuurr"]
        assert trace_from_intervals(records, overlap="last").to_strings() == ["uurrrr"]

    def test_horizon_truncates_and_pads(self):
        records = [("n", 0, 6, "u")]
        assert trace_from_intervals(records, horizon=3).to_strings() == ["uuu"]
        assert trace_from_intervals(records, horizon=8).to_strings() == ["uuuuuudd"]

    def test_rejects_bad_records(self):
        with pytest.raises(TraceFormatError):
            trace_from_intervals([])
        with pytest.raises(TraceFormatError):
            trace_from_intervals([("n", 3, 1, "u")])
        with pytest.raises(TraceFormatError):
            trace_from_intervals([("n", 0, 1, "x")])
        with pytest.raises(TraceFormatError):
            trace_from_intervals([("n", 0, 1, "u")], gap="nope")
        with pytest.raises(TraceFormatError):
            trace_from_intervals([("n", 0, 1, "u")], overlap="nope")
        with pytest.raises(TraceFormatError):
            trace_from_intervals([("n", 0, 1, "u")], slot_duration=0)


class TestCsvRoundTrip:
    def test_header_and_comments_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "node,start,end,state\n# comment\na,0,3,u\n\na,3,4,d\n"
        )
        assert load_interval_csv(path).to_strings() == ["uuud"]

    def test_headerless(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,0,2,u\na,2,3,r\n")
        assert load_interval_csv(path).to_strings() == ["uur"]

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,0,2\n")
        with pytest.raises(TraceFormatError, match="4 columns"):
            load_interval_csv(path)

    def test_header_after_comment_lines(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# exported log\nnode,start,end,state\na,0,2,u\n")
        assert load_interval_csv(path).to_strings() == ["uu"]

    def test_non_numeric_data_row_is_clean_error(self, tmp_path):
        # Regression: a bad numeric field past the header used to escape as
        # a raw ValueError (traceback) instead of a TraceFormatError.
        path = tmp_path / "t.csv"
        path.write_text("a,0,2,u\na,oops,3,u\n")
        with pytest.raises(TraceFormatError, match="non-numeric"):
            load_interval_csv(path)

    @settings(max_examples=25, deadline=None)
    @given(rows=ROWS, slot=st.sampled_from([1.0, 60.0, 900.0]))
    def test_round_trip(self, tmp_path_factory, rows, slot):
        trace = AvailabilityTrace(rows)
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        write_interval_csv(trace, path, slot_duration=slot)
        assert load_interval_csv(path, slot_duration=slot) == trace


class TestJsonlRoundTrip:
    def test_events_hold_until_next(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"node": "a", "time": 0, "state": "u"},
            {"node": "a", "time": 3, "state": "d"},
            {"node": "b", "time": 0, "state": "r"},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        trace = load_jsonl_events(path, horizon=5)
        assert trace.to_strings() == ["uuudd", "rrrrr"]

    def test_unsorted_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"node": "a", "time": 3, "state": "d"},
            {"node": "a", "time": 0, "state": "u"},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        assert load_jsonl_events(path, horizon=4).to_strings() == ["uuud"]

    def test_bad_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"node": "a"}\n')
        with pytest.raises(TraceFormatError, match="bad event"):
            load_jsonl_events(path)

    @settings(max_examples=25, deadline=None)
    @given(rows=ROWS)
    def test_round_trip(self, tmp_path_factory, rows):
        # No explicit horizon: the stream must be self-delimiting.
        trace = AvailabilityTrace(rows)
        path = tmp_path_factory.mktemp("jsonl") / "t.jsonl"
        write_jsonl_events(trace, path)
        assert load_jsonl_events(path) == trace

    def test_round_trip_preserves_final_run_and_constant_rows(self, tmp_path):
        # Regression: the writer used to emit only run-start events, so the
        # final run of every node (and whole constant traces) was lost.
        trace = AvailabilityTrace(["uuuud", "rrrrr"])
        path = tmp_path / "t.jsonl"
        write_jsonl_events(trace, path)
        assert load_jsonl_events(path) == trace


class TestCompactAndJson:
    @settings(max_examples=25, deadline=None)
    @given(rows=ROWS)
    def test_compact_round_trip(self, tmp_path_factory, rows):
        trace = AvailabilityTrace(rows)
        path = tmp_path_factory.mktemp("compact") / "t.trace"
        write_trace(trace, path)
        assert load_compact(path) == trace

    def test_json_round_trip(self, tmp_path):
        trace = AvailabilityTrace(["uurd", "dddd"])
        path = tmp_path / "t.json"
        write_trace(trace, path)
        assert load_trace(path) == trace

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# rows\nuur\ndru\n")
        assert load_compact(path).to_strings() == ["uur", "dru"]

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("\n")
        with pytest.raises(TraceFormatError):
            load_compact(path)


class TestLoadTraceDispatch:
    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(TraceFormatError, match="suffix"):
            load_trace(tmp_path / "t.xyz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(tmp_path / "t.csv")

    def test_write_requires_known_format(self, tmp_path):
        trace = AvailabilityTrace(["uu"])
        with pytest.raises(TraceFormatError, match="format"):
            write_trace(trace, tmp_path / "t.xyz")
        write_trace(trace, tmp_path / "t.xyz", format="compact")
        assert load_compact(tmp_path / "t.xyz") == trace


class TestTraceCatalog:
    def make_catalog(self, tmp_path):
        (tmp_path / "alpha.txt").write_text("uud\nruu\n")
        (tmp_path / "beta.csv").write_text("n,0,1800,u\nn,1800,2700,d\n")
        (tmp_path / "catalog.json").write_text(json.dumps({"beta": {"slot": 900}}))
        (tmp_path / "notes.rst").write_text("ignored\n")
        return TraceCatalog(tmp_path)

    def test_names_and_membership(self, tmp_path):
        catalog = self.make_catalog(tmp_path)
        assert catalog.names() == ["alpha", "beta"]
        assert "alpha" in catalog and "gamma" not in catalog
        assert len(catalog) == 2

    def test_load_applies_catalog_options(self, tmp_path):
        catalog = self.make_catalog(tmp_path)
        assert catalog.load("alpha").to_strings() == ["uud", "ruu"]
        assert catalog.load("beta").to_strings() == ["uud"]

    def test_caller_defaults_used_when_catalog_silent(self, tmp_path):
        # Regression: caller-side ingestion options used to be ignored for
        # catalog inputs even when catalog.json had no entry for the dataset.
        (tmp_path / "gamma.csv").write_text("n,0,1800,u\nn,1800,2700,d\n")
        catalog = self.make_catalog(tmp_path)
        assert catalog.load("gamma", defaults={"slot": 900}).to_strings() == ["uud"]
        # catalog.json entries still win over caller defaults.
        assert catalog.load("beta", defaults={"slot": 1.0}).to_strings() == ["uud"]

    def test_load_caches(self, tmp_path):
        catalog = self.make_catalog(tmp_path)
        assert catalog.load("alpha") is catalog.load("alpha")
        # Different effective options are distinct cache entries.
        assert catalog.load("alpha") is not catalog.load("alpha", defaults={"horizon": 2})

    def test_unknown_dataset(self, tmp_path):
        catalog = self.make_catalog(tmp_path)
        with pytest.raises(TraceFormatError, match="no dataset"):
            catalog.load("gamma")

    def test_duplicate_stems_rejected(self, tmp_path):
        (tmp_path / "x.txt").write_text("u\n")
        (tmp_path / "x.csv").write_text("n,0,1,u\n")
        with pytest.raises(TraceFormatError, match="duplicate"):
            TraceCatalog(tmp_path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(TraceFormatError, match="does not exist"):
            TraceCatalog(tmp_path / "nope")


class TestShippedDataset:
    """The example dataset under examples/traces/ is a working catalog."""

    def test_loads_via_catalog(self, example_traces_dir):
        catalog = TraceCatalog(example_traces_dir)
        assert "desktop_week" in catalog
        trace = catalog.load("desktop_week")
        assert trace.num_processors == 12
        assert trace.horizon == 672
        up_fraction = float(np.mean(trace.states == 0))
        assert 0.7 < up_fraction < 0.95
