"""Tests for bootstrap resampling and fit-then-sample generation."""

import numpy as np
import pytest

from repro.availability.trace import AvailabilityTrace, TraceAvailabilityModel
from repro.traces.resample import (
    TraceResampleError,
    block_bootstrap_row,
    bootstrap_models,
    bootstrap_rows,
    bootstrap_trace,
    fitted_trace,
)

TRACE = AvailabilityTrace(["uuuurrdd", "rrrrrrrr", "dddduuuu"])


class TestBootstrapRows:
    def test_rows_come_from_recording(self):
        rows = bootstrap_rows(TRACE, 10, np.random.default_rng(1))
        recorded = {TRACE.row(index).tobytes() for index in range(3)}
        assert len(rows) == 10
        assert all(row.tobytes() in recorded for row in rows)

    def test_deterministic_in_rng(self):
        first = bootstrap_rows(TRACE, 5, np.random.default_rng(7))
        second = bootstrap_rows(TRACE, 5, np.random.default_rng(7))
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_negative_count_rejected(self):
        with pytest.raises(TraceResampleError):
            bootstrap_rows(TRACE, -1, np.random.default_rng(0))


class TestBlockBootstrap:
    def test_length_and_alphabet(self):
        row = block_bootstrap_row(TRACE, 50, np.random.default_rng(2), block_length=4)
        assert row.size == 50
        assert set(np.unique(row)) <= {0, 1, 2}

    def test_blocks_are_recorded_subsequences(self):
        rng = np.random.default_rng(3)
        row = block_bootstrap_row(TRACE, 40, rng, block_length=4)
        haystacks = TRACE.to_strings()
        chars = np.array(["u", "r", "d"])
        for start in range(0, 40, 4):
            needle = "".join(chars[row[start: start + 4]])
            assert any(needle in haystack for haystack in haystacks)

    def test_block_longer_than_recording_is_clamped(self):
        row = block_bootstrap_row(TRACE, 20, np.random.default_rng(4), block_length=1000)
        assert row.size == 20

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TraceResampleError):
            block_bootstrap_row(TRACE, 0, rng, block_length=4)
        with pytest.raises(TraceResampleError):
            block_bootstrap_row(TRACE, 10, rng, block_length=0)


class TestBootstrapModels:
    def test_row_bootstrap_models(self):
        models = bootstrap_models(TRACE, np.random.default_rng(5), 4)
        assert len(models) == 4
        assert all(isinstance(model, TraceAvailabilityModel) for model in models)
        assert all(model.sequence.size == TRACE.horizon for model in models)

    def test_block_bootstrap_models_custom_horizon(self):
        models = bootstrap_models(
            TRACE, np.random.default_rng(6), 3, block_length=4, horizon=30
        )
        assert all(model.sequence.size == 30 for model in models)


class TestBootstrapTrace:
    def test_shape_and_determinism(self):
        first = bootstrap_trace(TRACE, 6, seed=11, block_length=3, horizon=25)
        second = bootstrap_trace(TRACE, 6, seed=11, block_length=3, horizon=25)
        assert first == second
        assert first.num_processors == 6 and first.horizon == 25

    def test_row_bootstrap_cannot_extend(self):
        with pytest.raises(TraceResampleError, match="extend"):
            bootstrap_trace(TRACE, 2, seed=0, horizon=100)

    def test_row_bootstrap_truncates(self):
        resampled = bootstrap_trace(TRACE, 2, seed=0, horizon=4)
        assert resampled.horizon == 4


class TestFittedTrace:
    def test_kinds_and_determinism(self):
        rng = np.random.default_rng(8)
        rows = np.vstack([
            np.array([0, 0, 0, 1, 0, 0, 2, 0] * 100),
            rng.integers(0, 3, size=800),
        ]).astype(np.int8)
        recording = AvailabilityTrace(rows)
        for kind in ("markov", "semi-markov"):
            first = fitted_trace(kind, recording, 3, 60, seed=9)
            second = fitted_trace(kind, recording, 3, 60, seed=9)
            assert first == second
            assert first.num_processors == 3 and first.horizon == 60
        diurnal = fitted_trace("diurnal", recording, 2, 50, seed=9, day_length=8)
        assert diurnal.num_processors == 2 and diurnal.horizon == 50
