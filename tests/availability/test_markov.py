"""Tests for the 3-state Markov availability model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.exceptions import InvalidModelError
from repro.types import RECLAIMED, UP


def make_model(stay_up=0.95, stay_r=0.92, stay_d=0.90) -> MarkovAvailabilityModel:
    return MarkovAvailabilityModel(paper_transition_matrix([stay_up, stay_r, stay_d]))


class TestConstruction:
    def test_from_probabilities_matches_matrix(self):
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.9, p_ur=0.05, p_ud=0.05,
            p_ru=0.3, p_rr=0.6, p_rd=0.1,
            p_du=0.5, p_dr=0.1, p_dd=0.4,
        )
        assert model.matrix[0, 0] == pytest.approx(0.9)
        assert model.matrix[2, 1] == pytest.approx(0.1)

    def test_rejects_non_stochastic_matrix(self):
        bad = np.array([[0.9, 0.2, 0.0], [0.3, 0.6, 0.1], [0.5, 0.1, 0.4]])
        with pytest.raises(ValueError):
            MarkovAvailabilityModel(bad)

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            MarkovAvailabilityModel(np.eye(2))

    def test_rejects_absorbing_reachable_down(self):
        matrix = np.array([[0.9, 0.05, 0.05], [0.3, 0.7, 0.0], [0.0, 0.0, 1.0]])
        with pytest.raises(InvalidModelError):
            MarkovAvailabilityModel(matrix)

    def test_absorbing_down_allowed_when_flagged(self):
        matrix = np.array([[0.9, 0.05, 0.05], [0.3, 0.7, 0.0], [0.0, 0.0, 1.0]])
        model = MarkovAvailabilityModel(matrix, down_recoverable=False)
        assert model.can_fail()

    def test_invalid_initial_distribution(self):
        with pytest.raises(InvalidModelError):
            MarkovAvailabilityModel(np.eye(3), initial_distribution=np.array([0.5, 0.6, -0.1]))

    def test_always_up(self):
        model = MarkovAvailabilityModel.always_up()
        assert model.availability() == pytest.approx(1.0)
        assert not model.can_fail()

    def test_two_state(self):
        model = MarkovAvailabilityModel.two_state(0.9, 0.5)
        assert model.matrix[0, 1] == 0.0  # no RECLAIMED state
        assert model.can_fail()


class TestDerivedQuantities:
    def test_stationary_distribution_is_fixed_point(self):
        model = make_model()
        pi = model.stationary_distribution()
        assert pi.shape == (3,)
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi @ model.matrix, pi, atol=1e-9)

    def test_availability_between_zero_and_one(self):
        model = make_model()
        assert 0.0 < model.availability() < 1.0

    def test_mean_sojourn(self):
        model = make_model(stay_up=0.95)
        assert model.mean_sojourn(UP) == pytest.approx(1.0 / 0.05)

    def test_mean_sojourn_absorbing(self):
        model = MarkovAvailabilityModel.always_up()
        assert model.mean_sojourn(UP) == float("inf")

    def test_mean_time_to_failure_finite_for_failing_model(self):
        model = make_model()
        mttf = model.mean_time_to_failure()
        assert np.isfinite(mttf)
        assert mttf > 1.0

    def test_mean_time_to_failure_infinite_for_reliable_model(self):
        assert MarkovAvailabilityModel.always_up().mean_time_to_failure() == float("inf")

    def test_up_reclaimed_submatrix(self):
        model = make_model()
        sub = model.up_reclaimed_submatrix()
        assert sub.shape == (2, 2)
        assert sub[0, 0] == pytest.approx(0.95)

    def test_failure_probability_from_up(self):
        model = make_model(stay_up=0.9)
        assert model.failure_probability_from_up() == pytest.approx(0.05)


class TestUpReturnProbability:
    def test_matches_matrix_power(self):
        model = make_model()
        sub = model.up_reclaimed_submatrix()
        for t in (1, 2, 5, 10, 50):
            expected = np.linalg.matrix_power(sub, t)[0, 0]
            assert model.up_return_probability(t) == pytest.approx(expected, rel=1e-9)

    def test_zero_steps_is_one(self):
        model = make_model()
        assert model.up_return_probability(0) == pytest.approx(1.0)

    def test_vectorised_matches_scalar(self):
        model = make_model()
        horizon = 20
        vector = model.up_return_probabilities(horizon)
        scalars = [model.up_return_probability(t) for t in range(1, horizon + 1)]
        assert np.allclose(vector, scalars)

    def test_monotone_decreasing_for_failing_model(self):
        model = make_model()
        values = model.up_return_probabilities(100)
        # Not strictly monotone in general, but must decay overall and stay in [0, 1].
        assert values[0] <= 1.0
        assert values[-1] < values[0]
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_dominant_eigenvalue_below_one_when_failures_possible(self):
        model = make_model()
        assert 0.0 < model.dominant_up_eigenvalue() < 1.0

    def test_dominant_eigenvalue_one_when_no_failures(self):
        matrix = paper_transition_matrix([0.9, 0.8, 1.0])
        # Zero out failure transitions: move that mass to RECLAIMED instead.
        matrix[0] = [0.9, 0.1, 0.0]
        matrix[1] = [0.2, 0.8, 0.0]
        matrix[2] = [0.0, 0.0, 1.0]
        model = MarkovAvailabilityModel(matrix, down_recoverable=False)
        assert model.dominant_up_eigenvalue() == pytest.approx(1.0, abs=1e-9)


class TestNoDownProbability:
    def test_matches_submatrix_power(self):
        model = make_model()
        sub = model.up_reclaimed_submatrix()
        for t in (1, 3, 10):
            expected = np.linalg.matrix_power(sub, t)[0, :].sum()
            assert model.no_down_probability(t) == pytest.approx(expected, rel=1e-9)

    def test_decreasing_in_time(self):
        model = make_model()
        values = [model.no_down_probability(t) for t in range(0, 30)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_reliable_model_never_fails(self):
        model = MarkovAvailabilityModel.always_up()
        assert model.no_down_probability(500) == pytest.approx(1.0)


class TestSampling:
    def test_trajectory_shape_and_values(self):
        model = make_model()
        trajectory = model.sample_trajectory(200, seed=1)
        assert trajectory.shape == (200,)
        assert set(np.unique(trajectory)).issubset({0, 1, 2})

    def test_trajectory_deterministic_given_seed(self):
        model = make_model()
        a = model.sample_trajectory(50, seed=3)
        b = model.sample_trajectory(50, seed=3)
        assert np.array_equal(a, b)

    def test_forced_initial_state(self):
        model = make_model()
        trajectory = model.sample_trajectory(10, seed=0, initial=RECLAIMED)
        assert trajectory[0] == int(RECLAIMED)

    def test_empirical_transitions_match_matrix(self):
        from repro.availability.statistics import estimate_markov_matrix

        model = make_model()
        trajectory = model.sample_trajectory(60_000, seed=11)
        estimated = estimate_markov_matrix(trajectory)
        assert np.allclose(estimated, model.matrix, atol=0.02)

    def test_zero_length(self):
        model = make_model()
        assert model.sample_trajectory(0, seed=0).size == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            make_model().sample_trajectory(-1)


class TestSerialisation:
    def test_round_trip(self):
        model = make_model()
        clone = MarkovAvailabilityModel.from_dict(model.to_dict())
        assert clone == model

    def test_round_trip_with_initial_distribution(self):
        model = MarkovAvailabilityModel(
            paper_transition_matrix([0.95, 0.9, 0.9]),
            initial_distribution=np.array([1.0, 0.0, 0.0]),
        )
        clone = MarkovAvailabilityModel.from_dict(model.to_dict())
        assert np.allclose(clone.initial_distribution, [1.0, 0.0, 0.0])

    def test_from_dict_rejects_other_types(self):
        with pytest.raises(InvalidModelError):
            MarkovAvailabilityModel.from_dict({"type": "trace", "rows": ["u"]})

    def test_equality_and_hash(self):
        a = make_model()
        b = make_model()
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_model(stay_up=0.91)


class TestPropertyBased:
    @given(
        stay=st.tuples(
            st.floats(min_value=0.05, max_value=0.99),
            st.floats(min_value=0.05, max_value=0.99),
            st.floats(min_value=0.05, max_value=0.99),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_stationary_distribution_always_valid(self, stay):
        model = MarkovAvailabilityModel(paper_transition_matrix(list(stay)))
        pi = model.stationary_distribution()
        assert pi.min() >= -1e-9
        assert pi.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.allclose(pi @ model.matrix, pi, atol=1e-6)

    @given(
        stay=st.tuples(
            st.floats(min_value=0.1, max_value=0.99),
            st.floats(min_value=0.1, max_value=0.99),
            st.floats(min_value=0.1, max_value=0.99),
        ),
        t=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_up_return_probability_in_unit_interval(self, stay, t):
        model = MarkovAvailabilityModel(paper_transition_matrix(list(stay)))
        value = float(model.up_return_probability(t))
        assert 0.0 <= value <= 1.0
        # And it can never exceed the probability of not having failed.
        assert value <= model.no_down_probability(t) + 1e-9
