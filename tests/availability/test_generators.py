"""Tests for the paper-style availability-model generators."""

import numpy as np
import pytest

from repro.availability.generators import (
    paper_transition_matrix,
    random_markov_model,
    random_markov_models,
    reliability_spread_models,
)
from repro.exceptions import InvalidModelError


class TestPaperTransitionMatrix:
    def test_structure(self):
        matrix = paper_transition_matrix([0.9, 0.8, 0.7])
        assert matrix[0, 0] == pytest.approx(0.9)
        assert matrix[0, 1] == pytest.approx(0.05)
        assert matrix[0, 2] == pytest.approx(0.05)
        assert matrix[1, 0] == pytest.approx(0.1)
        assert matrix[2, 2] == pytest.approx(0.7)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_rejects_wrong_length(self):
        with pytest.raises(InvalidModelError):
            paper_transition_matrix([0.9, 0.8])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidModelError):
            paper_transition_matrix([1.2, 0.8, 0.7])


class TestRandomMarkovModel:
    def test_deterministic_given_seed(self):
        a = random_markov_model(seed=5)
        b = random_markov_model(seed=5)
        assert a == b

    def test_stay_probabilities_within_paper_range(self):
        for seed in range(20):
            model = random_markov_model(seed=seed)
            diag = np.diag(model.matrix)
            assert np.all(diag >= 0.90) and np.all(diag <= 0.99)

    def test_off_diagonal_split_evenly(self):
        model = random_markov_model(seed=1)
        matrix = model.matrix
        for i in range(3):
            off = [matrix[i, j] for j in range(3) if j != i]
            assert off[0] == pytest.approx(off[1])

    def test_custom_range(self):
        model = random_markov_model(seed=0, stay_low=0.5, stay_high=0.6)
        diag = np.diag(model.matrix)
        assert np.all(diag >= 0.5) and np.all(diag <= 0.6)

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidModelError):
            random_markov_model(seed=0, stay_low=0.9, stay_high=0.5)


class TestRandomMarkovModels:
    def test_count(self):
        models = random_markov_models(7, seed=2)
        assert len(models) == 7

    def test_models_differ(self):
        models = random_markov_models(5, seed=3)
        matrices = [m.matrix.tobytes() for m in models]
        assert len(set(matrices)) > 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_markov_models(-1, seed=0)

    def test_zero_count(self):
        assert random_markov_models(0, seed=0) == []


class TestReliabilitySpreadModels:
    def test_count_and_mix(self):
        models = reliability_spread_models(10, seed=4, reliable_fraction=0.5)
        assert len(models) == 10
        up_stay = sorted(m.matrix[0, 0] for m in models)
        # Half the workers should have a clearly higher UP-stay probability.
        assert up_stay[0] < 0.95 < up_stay[-1]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            reliability_spread_models(4, reliable_fraction=1.5)
