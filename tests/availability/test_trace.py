"""Tests for availability traces and trace-replay models."""

import numpy as np
import pytest

from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.trace import AvailabilityTrace, TraceAvailabilityModel
from repro.exceptions import InvalidModelError
from repro.types import DOWN, RECLAIMED, UP


class TestAvailabilityTrace:
    def test_from_strings(self):
        trace = AvailabilityTrace(["uurd", "dddd", "uuuu"])
        assert trace.num_processors == 3
        assert trace.horizon == 4
        assert trace.state(0, 2) == RECLAIMED
        assert trace.state(1, 0) == DOWN

    def test_from_numpy(self):
        states = np.array([[0, 1, 2], [2, 0, 0]], dtype=np.int8)
        trace = AvailabilityTrace(states)
        assert trace.state(1, 1) == UP

    def test_rejects_ragged_rows(self):
        with pytest.raises(InvalidModelError):
            AvailabilityTrace(["uu", "u"])

    def test_rejects_empty(self):
        with pytest.raises(InvalidModelError):
            AvailabilityTrace([])

    def test_rejects_bad_codes(self):
        with pytest.raises(InvalidModelError):
            AvailabilityTrace(np.array([[0, 5]], dtype=np.int8))

    def test_rejects_bad_char(self):
        with pytest.raises(ValueError):
            AvailabilityTrace(["ux"])

    def test_up_matrix(self):
        trace = AvailabilityTrace(["ud", "uu"])
        up = trace.up_matrix()
        assert up.tolist() == [[True, False], [True, True]]

    def test_processors_up_at(self):
        trace = AvailabilityTrace(["ud", "ru", "uu"])
        assert trace.processors_up_at(0) == [0, 2]
        assert trace.processors_up_at(1) == [1, 2]

    def test_slots_all_up(self):
        trace = AvailabilityTrace(["uudu", "uruu"])
        assert trace.slots_all_up([0, 1]).tolist() == [0, 3]
        # Empty set: vacuously all slots.
        assert trace.slots_all_up([]).tolist() == [0, 1, 2, 3]

    def test_truncated(self):
        trace = AvailabilityTrace(["uudu"])
        assert trace.truncated(2).horizon == 2
        with pytest.raises(ValueError):
            trace.truncated(10)

    def test_extended(self):
        a = AvailabilityTrace(["ud"])
        b = AvailabilityTrace(["ru"])
        combined = a.extended(b)
        assert combined.to_strings() == ["udru"]

    def test_extended_mismatched_rejected(self):
        with pytest.raises(InvalidModelError):
            AvailabilityTrace(["ud"]).extended(AvailabilityTrace(["ud", "uu"]))

    def test_round_trip_strings_and_dict(self):
        trace = AvailabilityTrace(["urdu", "dduu"])
        assert AvailabilityTrace(trace.to_strings()) == trace
        assert AvailabilityTrace.from_dict(trace.to_dict()) == trace

    def test_row_returns_copy(self):
        trace = AvailabilityTrace(["uu"])
        row = trace.row(0)
        row[0] = 2
        assert trace.state(0, 0) == UP

    def test_from_models_deterministic(self):
        models = [MarkovAvailabilityModel.always_up() for _ in range(3)]
        trace = AvailabilityTrace.from_models(models, horizon=10, seed=1)
        assert trace.num_processors == 3
        assert trace.horizon == 10
        assert np.all(trace.states == int(UP))

    def test_equality(self):
        assert AvailabilityTrace(["ud"]) == AvailabilityTrace(["ud"])
        assert AvailabilityTrace(["ud"]) != AvailabilityTrace(["uu"])


class TestTraceAvailabilityModel:
    def test_replays_sequence(self):
        model = TraceAvailabilityModel("urdu")
        rng = np.random.default_rng(0)
        states = [model.initial_state(rng)]
        for _ in range(3):
            states.append(model.next_state(states[-1], rng))
        assert [s.char for s in states] == ["u", "r", "d", "u"]

    def test_wrap_around(self):
        model = TraceAvailabilityModel("ur", wrap=True)
        seq = model.sample_trajectory(6, seed=0)
        assert seq.tolist() == [0, 1, 0, 1, 0, 1]

    def test_no_wrap_repeats_last(self):
        model = TraceAvailabilityModel("ud", wrap=False)
        seq = model.sample_trajectory(5, seed=0)
        assert seq.tolist() == [0, 2, 2, 2, 2]

    def test_empty_rejected(self):
        with pytest.raises(InvalidModelError):
            TraceAvailabilityModel("")

    def test_markov_approximation_is_stochastic(self):
        model = TraceAvailabilityModel("uuurrdduu")
        matrix = model.markov_approximation()
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_describe_mentions_up_fraction(self):
        assert "up_fraction" in TraceAvailabilityModel("uu").describe()
