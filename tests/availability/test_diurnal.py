"""Tests for the diurnal (time-of-day dependent) availability model."""

import numpy as np
import pytest

from repro.availability.diurnal import DiurnalAvailabilityModel, DiurnalPhase
from repro.exceptions import InvalidModelError
from repro.types import UP


def two_phase_model(offset=0):
    stable = np.array([[0.99, 0.01, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5]])
    volatile = np.array([[0.5, 0.4, 0.1], [0.2, 0.7, 0.1], [0.3, 0.1, 0.6]])
    return DiurnalAvailabilityModel(
        [DiurnalPhase("night", 10, stable), DiurnalPhase("office", 10, volatile)],
        phase_offset=offset,
    )


class TestDiurnalPhase:
    def test_invalid_duration(self):
        with pytest.raises(InvalidModelError):
            DiurnalPhase("x", 0, np.eye(3))

    def test_invalid_matrix(self):
        with pytest.raises(ValueError):
            DiurnalPhase("x", 5, np.ones((3, 3)))


class TestDiurnalModel:
    def test_cycle_length(self):
        model = two_phase_model()
        assert model.cycle_length == 20
        assert len(model.phases) == 2

    def test_phase_lookup_respects_offset(self):
        model = two_phase_model(offset=10)
        assert model.phase_at(0).name == "office"
        assert model.phase_at(10).name == "night"
        assert model.phase_at(25).name == "office"

    def test_empty_phases_rejected(self):
        with pytest.raises(InvalidModelError):
            DiurnalAvailabilityModel([])

    def test_negative_offset_rejected(self):
        with pytest.raises(InvalidModelError):
            two_phase_model(offset=-1)

    def test_markov_approximation_is_weighted_average(self):
        model = two_phase_model()
        approx = model.markov_approximation()
        expected = 0.5 * model.phases[0].matrix + 0.5 * model.phases[1].matrix
        assert np.allclose(approx, expected)
        assert np.allclose(approx.sum(axis=1), 1.0)

    def test_trajectory_values_valid(self):
        model = two_phase_model()
        trajectory = model.sample_trajectory(500, seed=3)
        assert set(np.unique(trajectory)).issubset({0, 1, 2})

    def test_night_phase_is_more_available_than_office_phase(self):
        model = DiurnalAvailabilityModel.office_hours(day_length=40, office_fraction=0.5)
        # Sample many days and compare UP fraction during the two halves.
        trajectory = model.sample_trajectory(40 * 200, seed=9)
        per_slot = trajectory.reshape(-1, 40)
        office_up = np.mean(per_slot[:, :20] == int(UP))
        night_up = np.mean(per_slot[:, 20:] == int(UP))
        assert night_up > office_up

    def test_office_hours_invalid_fraction(self):
        with pytest.raises(InvalidModelError):
            DiurnalAvailabilityModel.office_hours(office_fraction=1.5)

    def test_reset_restarts_cycle(self):
        model = two_phase_model()
        first = model.sample_trajectory(30, seed=4)
        second = model.sample_trajectory(30, seed=4)
        assert np.array_equal(first, second)

    def test_describe(self):
        assert "Diurnal" in two_phase_model().describe()

    def test_usable_in_simulation(self):
        from repro.application import Application
        from repro.platform import Platform, Processor
        from repro.scheduling import create_scheduler
        from repro.simulation import simulate

        processors = [
            Processor(
                speed=1, capacity=3,
                availability=DiurnalAvailabilityModel.office_hours(
                    day_length=48, phase_offset=offset
                ),
            )
            for offset in (0, 12, 24, 36)
        ]
        platform = Platform(processors, ncom=2, tprog=1, tdata=1)
        application = Application(tasks_per_iteration=3, iterations=2)
        result = simulate(platform, application, create_scheduler("IE"), seed=1,
                          max_slots=20_000)
        assert result.completed_iterations >= 1
