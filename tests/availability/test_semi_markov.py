"""Tests for the semi-Markov (non-Markovian holding time) availability models."""

import numpy as np
import pytest

from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.semi_markov import (
    DeterministicHolding,
    GeometricHolding,
    LogNormalHolding,
    SemiMarkovAvailabilityModel,
    WeibullHolding,
)
from repro.availability.statistics import TraceStatistics
from repro.exceptions import InvalidModelError
from repro.types import DOWN, RECLAIMED, UP


def simple_jump_matrix():
    return np.array(
        [
            [0.0, 0.7, 0.3],
            [0.8, 0.0, 0.2],
            [1.0, 0.0, 0.0],
        ]
    )


def make_model(holding=None):
    holding = holding or {
        UP: GeometricHolding(0.1),
        RECLAIMED: GeometricHolding(0.5),
        DOWN: GeometricHolding(0.25),
    }
    return SemiMarkovAvailabilityModel(simple_jump_matrix(), holding)


class TestHoldingTimes:
    def test_geometric_mean(self):
        assert GeometricHolding(0.25).mean() == pytest.approx(4.0)

    def test_geometric_invalid(self):
        with pytest.raises(InvalidModelError):
            GeometricHolding(0.0)

    def test_deterministic(self):
        holding = DeterministicHolding(7)
        rng = np.random.default_rng(0)
        assert holding.sample(rng) == 7
        assert holding.mean() == 7.0

    def test_deterministic_invalid(self):
        with pytest.raises(InvalidModelError):
            DeterministicHolding(0)

    def test_weibull_samples_positive_integers(self):
        holding = WeibullHolding(shape=0.7, scale=10.0)
        rng = np.random.default_rng(1)
        samples = [holding.sample(rng) for _ in range(200)]
        assert all(isinstance(s, int) and s >= 1 for s in samples)

    def test_weibull_mean_formula(self):

        holding = WeibullHolding(shape=1.0, scale=5.0)
        assert holding.mean() == pytest.approx(5.0)

    def test_lognormal_samples(self):
        holding = LogNormalHolding(mu=1.0, sigma=0.5)
        rng = np.random.default_rng(2)
        samples = [holding.sample(rng) for _ in range(100)]
        assert min(samples) >= 1

    def test_describe_strings(self):
        assert "Weibull" in WeibullHolding(0.7, 3).describe()
        assert "Geometric" in GeometricHolding(0.5).describe()


class TestSemiMarkovModel:
    def test_rejects_nonzero_diagonal(self):
        matrix = simple_jump_matrix()
        matrix[0, 0] = 0.1
        matrix[0, 1] = 0.6
        with pytest.raises(InvalidModelError):
            make_model_with_matrix(matrix)

    def test_rejects_missing_holding(self):
        with pytest.raises(InvalidModelError):
            SemiMarkovAvailabilityModel(simple_jump_matrix(), {UP: GeometricHolding(0.5)})

    def test_rejects_bad_rows(self):
        matrix = simple_jump_matrix()
        matrix[0, 1] = 0.9  # row no longer sums to 1
        with pytest.raises(InvalidModelError):
            make_model_with_matrix(matrix)

    def test_trajectory_values(self):
        model = make_model()
        trajectory = model.sample_trajectory(500, seed=3)
        assert set(np.unique(trajectory)).issubset({0, 1, 2})

    def test_holding_times_respected_for_deterministic(self):
        model = SemiMarkovAvailabilityModel(
            np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            {UP: DeterministicHolding(3), RECLAIMED: DeterministicHolding(2),
             DOWN: DeterministicHolding(1)},
        )
        trajectory = model.sample_trajectory(10, seed=0)
        # Should alternate 3 UP slots then 2 RECLAIMED slots.
        assert trajectory.tolist() == [0, 0, 0, 1, 1, 0, 0, 0, 1, 1]

    def test_geometric_holding_matches_markov_statistics(self):
        """With geometric holding times the process is a Markov chain."""
        model = make_model()
        fitted = MarkovAvailabilityModel(model.markov_approximation())
        trajectory = model.sample_trajectory(40_000, seed=5)
        stats = TraceStatistics.from_sequence(trajectory)
        assert stats.up_fraction == pytest.approx(fitted.availability(), abs=0.05)

    def test_markov_approximation_is_stochastic(self):
        model = SemiMarkovAvailabilityModel.desktop_grid()
        matrix = model.markov_approximation()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= 0)

    def test_markov_approximation_mean_sojourn(self):
        model = make_model({
            UP: DeterministicHolding(10),
            RECLAIMED: DeterministicHolding(2),
            DOWN: DeterministicHolding(4),
        })
        matrix = model.markov_approximation()
        # Fitted geometric sojourn must match the true mean of 10 slots.
        assert 1.0 / (1.0 - matrix[0, 0]) == pytest.approx(10.0)

    def test_desktop_grid_preset(self):
        model = SemiMarkovAvailabilityModel.desktop_grid()
        trajectory = model.sample_trajectory(2000, seed=9)
        stats = TraceStatistics.from_sequence(trajectory)
        # Mostly available, with some churn.
        assert stats.up_fraction > 0.4
        assert stats.num_failures >= 1

    def test_desktop_grid_invalid_fraction(self):
        with pytest.raises(InvalidModelError):
            SemiMarkovAvailabilityModel.desktop_grid(reclaim_fraction=2.0)

    def test_describe(self):
        assert "SemiMarkov" in make_model().describe()


def make_model_with_matrix(matrix):
    return SemiMarkovAvailabilityModel(
        matrix,
        {
            UP: GeometricHolding(0.2),
            RECLAIMED: GeometricHolding(0.5),
            DOWN: GeometricHolding(0.3),
        },
    )
