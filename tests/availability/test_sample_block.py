"""Stream-equivalence tests for the vectorised ``sample_block`` samplers.

Every availability model must produce, for a given generator state, exactly
the same trajectory through :meth:`sample_block` as through repeated
:meth:`next_state` calls — that contract is what lets the simulation engine
prefetch worker states in blocks without changing any fixed-seed result.
"""

import numpy as np
import pytest

from repro.availability.diurnal import DiurnalAvailabilityModel
from repro.availability.generators import (
    paper_transition_matrix,
    sample_initial_states,
    sample_state_block,
)
from repro.availability.markov import MarkovAvailabilityModel
from repro.availability.model import AvailabilityModel
from repro.availability.semi_markov import SemiMarkovAvailabilityModel
from repro.availability.trace import TraceAvailabilityModel
from repro.types import DOWN, RECLAIMED, UP, ProcessorState


def sequential_states(model, rng, length, current):
    """Reference trajectory: *length* successive next_state calls."""
    states = np.empty(length, dtype=np.int8)
    for index in range(length):
        current = model.next_state(current, rng)
        states[index] = int(current)
    return states


def make_markov():
    return MarkovAvailabilityModel(paper_transition_matrix([0.95, 0.92, 0.90]))


def make_semi_markov():
    return SemiMarkovAvailabilityModel.desktop_grid(mean_up=25.0)


def make_diurnal():
    return DiurnalAvailabilityModel.office_hours(phase_offset=13)


def make_trace():
    return TraceAvailabilityModel("uurdduruddruuudr", wrap=True)


MODEL_FACTORIES = {
    "markov": make_markov,
    "semi_markov": make_semi_markov,
    "diurnal": make_diurnal,
    "trace": make_trace,
}


@pytest.mark.parametrize("kind", sorted(MODEL_FACTORIES))
def test_sample_block_matches_next_state(kind):
    factory = MODEL_FACTORIES[kind]
    reference_model, block_model = factory(), factory()
    reference_rng, block_rng = np.random.default_rng(42), np.random.default_rng(42)

    reference_model.reset()
    initial_ref = reference_model.initial_state(reference_rng)
    block_model.reset()
    initial_blk = block_model.initial_state(block_rng)
    assert initial_ref == initial_blk

    expected = sequential_states(reference_model, reference_rng, 4000, initial_ref)
    actual = block_model.sample_block(1, 4000, block_rng, current=initial_blk)
    assert actual.dtype == np.int8
    assert np.array_equal(expected, actual)


@pytest.mark.parametrize("kind", sorted(MODEL_FACTORIES))
@pytest.mark.parametrize("split", [1, 7, 997])
def test_sample_block_split_invariance(kind, split):
    """Cutting the horizon into blocks must not change the trajectory."""
    factory = MODEL_FACTORIES[kind]
    whole_model, split_model = factory(), factory()
    whole_rng, split_rng = np.random.default_rng(7), np.random.default_rng(7)

    whole_model.reset()
    current = whole_model.initial_state(whole_rng)
    split_model.reset()
    split_model.initial_state(split_rng)

    length = 3000
    whole = whole_model.sample_block(1, length, whole_rng, current=current)

    pieces = []
    start, state = 1, current
    while start <= length:
        horizon = min(split, length - start + 1)
        piece = split_model.sample_block(start, horizon, split_rng, current=state)
        pieces.append(piece)
        state = ProcessorState(int(piece[-1]))
        start += horizon
    assert np.array_equal(whole, np.concatenate(pieces))


@pytest.mark.parametrize("kind", ["semi_markov", "diurnal", "trace"])
def test_block_then_slotwise_continuation(kind):
    """Internal memory (sojourns, clocks, cursors) must survive a block."""
    factory = MODEL_FACTORIES[kind]
    reference_model, mixed_model = factory(), factory()
    reference_rng, mixed_rng = np.random.default_rng(3), np.random.default_rng(3)

    reference_model.reset()
    current_ref = reference_model.initial_state(reference_rng)
    mixed_model.reset()
    current_mix = mixed_model.initial_state(mixed_rng)

    expected = sequential_states(reference_model, reference_rng, 500, current_ref)
    block = mixed_model.sample_block(1, 300, mixed_rng, current=current_mix)
    tail = sequential_states(
        mixed_model, mixed_rng, 200, ProcessorState(int(block[-1]))
    )
    assert np.array_equal(expected, np.concatenate([block, tail]))


def test_trace_model_no_wrap_block():
    model = TraceAvailabilityModel("uurdd", wrap=False)
    rng = np.random.default_rng(0)
    model.reset()
    current = model.initial_state(rng)
    block = model.sample_block(1, 9, rng, current=current)
    # u u r d d then the final state repeats forever.
    assert list(block) == [int(UP), int(RECLAIMED), int(DOWN), int(DOWN),
                           int(DOWN), int(DOWN), int(DOWN), int(DOWN), int(DOWN)]


def test_default_sample_block_falls_back_to_next_state():
    """Models that do not override sample_block still behave correctly."""

    class CyclingModel(AvailabilityModel):
        def initial_state(self, rng):
            return UP

        def next_state(self, current, rng):
            return ProcessorState((int(current) + 1) % 3)

        def markov_approximation(self):
            return np.full((3, 3), 1.0 / 3.0)

    model = CyclingModel()
    block = model.sample_block(1, 6, np.random.default_rng(0), current=UP)
    assert list(block) == [1, 2, 0, 1, 2, 0]


def test_sample_block_validates_arguments():
    model = make_markov()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        model.sample_block(0, 5, rng, current=UP)
    with pytest.raises(ValueError):
        model.sample_block(1, -1, rng, current=UP)
    assert model.sample_block(1, 0, rng, current=UP).size == 0


def test_sample_trajectory_unchanged_by_vectorisation():
    """sample_trajectory consumes streams exactly as the historical loop did."""
    model = make_markov()
    trajectory = model.sample_trajectory(2000, seed=77)
    # Reference: explicit loop over next_state with the same derived stream.
    rng = np.random.default_rng(77)
    model.reset()
    current = model.initial_state(rng)
    expected = np.empty(2000, dtype=np.int8)
    expected[0] = int(current)
    expected[1:] = sequential_states(model, rng, 1999, current)
    assert np.array_equal(trajectory, expected)


def test_platform_batch_helpers_match_engine_order():
    """sample_initial_states + sample_state_block replay per-model streams."""
    models = [make_markov(), make_semi_markov(), make_diurnal()]
    reference = [make_markov(), make_semi_markov(), make_diurnal()]
    rngs = [np.random.default_rng(seed) for seed in (1, 2, 3)]
    ref_rngs = [np.random.default_rng(seed) for seed in (1, 2, 3)]

    column = sample_initial_states(models, rngs)
    block = sample_state_block(models, 1, 400, rngs, column)
    for index, (model, rng) in enumerate(zip(reference, ref_rngs)):
        model.reset()
        current = model.initial_state(rng)
        assert int(column[index]) == int(current)
        expected = sequential_states(model, rng, 400, current)
        assert np.array_equal(block[index], expected)
