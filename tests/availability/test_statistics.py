"""Tests for empirical availability statistics."""

import numpy as np
import pytest

from repro.availability.statistics import (
    TraceStatistics,
    estimate_markov_matrix,
    estimate_markov_model,
    state_intervals,
    state_runs,
    transition_counts,
)
from repro.types import DOWN, RECLAIMED, UP


class TestTransitionCounts:
    def test_simple_sequence(self):
        counts = transition_counts([0, 0, 1, 2, 0])
        assert counts[0, 0] == 1
        assert counts[0, 1] == 1
        assert counts[1, 2] == 1
        assert counts[2, 0] == 1
        assert counts.sum() == 4

    def test_accepts_state_chars(self):
        counts = transition_counts(list("uurd"))
        assert counts[0, 0] == 1
        assert counts[1, 2] == 1

    def test_short_sequences(self):
        assert transition_counts([]).sum() == 0
        assert transition_counts([1]).sum() == 0

    def test_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            transition_counts([0, 7])


class TestEstimateMarkovMatrix:
    def test_rows_are_stochastic(self):
        matrix = estimate_markov_matrix([0, 0, 1, 0, 2, 2, 0])
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_unobserved_state_is_absorbing(self):
        matrix = estimate_markov_matrix([0, 0, 0])
        assert matrix[1].tolist() == [0.0, 1.0, 0.0]
        assert matrix[2].tolist() == [0.0, 0.0, 1.0]

    def test_prior_smoothing_removes_zeros(self):
        matrix = estimate_markov_matrix([0, 0, 0, 1, 0], prior=0.5)
        assert np.all(matrix[0] > 0)

    def test_negative_prior_rejected(self):
        with pytest.raises(ValueError):
            estimate_markov_matrix([0, 1], prior=-1)

    def test_estimate_model_round_trip(self):
        model = estimate_markov_model([0, 0, 1, 1, 0, 2, 0] * 10)
        assert model.matrix.shape == (3, 3)


class TestStateIntervals:
    def test_runs(self):
        intervals = state_intervals(list("uuurrduu"))
        assert intervals[UP] == [3, 2]
        assert intervals[RECLAIMED] == [2]
        assert intervals[DOWN] == [1]

    def test_empty(self):
        intervals = state_intervals([])
        assert intervals[UP] == [] and intervals[DOWN] == []

    def test_single_run(self):
        assert state_intervals([0, 0, 0])[UP] == [3]


class TestStateRuns:
    def test_run_length_encoding(self):
        assert state_runs(list("uuurrduu")) == [(UP, 3), (RECLAIMED, 2), (DOWN, 1), (UP, 2)]

    def test_empty(self):
        assert state_runs([]) == []


class TestCensorEdges:
    def test_drops_first_and_last_run(self):
        intervals = state_intervals(list("uuurrduu"), censor_edges=True)
        assert intervals[UP] == []  # both UP runs touch an edge
        assert intervals[RECLAIMED] == [2]
        assert intervals[DOWN] == [1]

    def test_single_run_is_doubly_censored(self):
        intervals = state_intervals([0, 0, 0], censor_edges=True)
        assert intervals[UP] == []

    def test_default_keeps_edges(self):
        # Pinned historical behaviour: edge runs count as complete intervals.
        assert state_intervals(list("uuurrduu"))[UP] == [3, 2]

    def test_trace_statistics_censoring_removes_short_bias(self):
        # The long edge runs are censored; only the complete length-2 UP run
        # remains, so the censored mean is not dragged up by the edges.
        sequence = list("u" * 50 + "r" + "uu" + "r" + "u" * 50)
        biased = TraceStatistics.from_sequence(sequence)
        censored = TraceStatistics.from_sequence(sequence, censor_edges=True)
        assert biased.mean_up_interval > 30
        assert censored.mean_up_interval == pytest.approx(2.0)
        # Occupancy fractions and failure counts are unaffected.
        assert censored.up_fraction == biased.up_fraction
        assert censored.num_failures == biased.num_failures


class TestTraceStatistics:
    def test_fractions_sum_to_one(self):
        stats = TraceStatistics.from_sequence(list("uuurrdduuu"))
        assert stats.up_fraction + stats.reclaimed_fraction + stats.down_fraction == pytest.approx(1.0)

    def test_failure_count(self):
        stats = TraceStatistics.from_sequence(list("uudduudu"))
        assert stats.num_failures == 2

    def test_failure_count_starting_down(self):
        stats = TraceStatistics.from_sequence(list("duu"))
        assert stats.num_failures == 1

    def test_mean_intervals(self):
        stats = TraceStatistics.from_sequence(list("uuruu"))
        assert stats.mean_up_interval == pytest.approx(2.0)
        assert stats.mean_reclaimed_interval == pytest.approx(1.0)
        assert stats.mean_down_interval == 0.0

    def test_empty_sequence(self):
        stats = TraceStatistics.from_sequence([])
        assert stats.length == 0
        assert stats.up_fraction == 0.0

    def test_as_dict(self):
        payload = TraceStatistics.from_sequence(list("uuds")).as_dict() if False else \
            TraceStatistics.from_sequence(list("uud")).as_dict()
        assert set(payload) >= {"length", "up_fraction", "num_failures", "empirical_matrix"}
