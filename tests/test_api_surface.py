"""API-surface snapshot: the public names of ``repro`` and ``repro.api``.

These lists are a deliberate contract.  If this test fails, either restore
the name (accidental breakage) or — for an intentional API change — update
the snapshot here *and* the README's Public API section in the same change.
The lint lane of CI runs this file on its own so surface regressions fail
fast, before the full matrix.
"""

import repro
import repro.api

API_SURFACE = [
    "CampaignSpec",
    "ComparisonResult",
    "RunResult",
    "SweepResult",
    "availability_models",
    "available_heuristics",
    "builtin_spec",
    "canonical_heuristic",
    "compare",
    "create_scheduler",
    "heuristic_info",
    "heuristics",
    "load_spec",
    "run",
    "sweep",
]

PACKAGE_SURFACE = [
    "ALL_HEURISTICS",
    "AnalysisContext",
    "Application",
    "AvailabilityModel",
    "AvailabilityTrace",
    "CampaignScale",
    "ChurnProcess",
    "Configuration",
    "ConfigurationEstimate",
    "DOWN",
    "DegradationAvailabilityModel",
    "DomainOutageProcess",
    "ENCDInstance",
    "EXTENSION_HEURISTIC_NAMES",
    "ExpectationMode",
    "ExperimentScenario",
    "GroupAnalysis",
    "GroupHazardProcess",
    "InfeasibleProblemError",
    "InvalidApplicationError",
    "InvalidConfigurationError",
    "InvalidModelError",
    "InvalidPlatformError",
    "MarkovAvailabilityModel",
    "OfflineProblem",
    "PASSIVE_HEURISTICS",
    "PROACTIVE_HEURISTICS",
    "Platform",
    "PlatformSpec",
    "Processor",
    "ProcessorState",
    "RECLAIMED",
    "ReproError",
    "ScenarioParameters",
    "Scheduler",
    "SchedulingError",
    "SemiMarkovAvailabilityModel",
    "SimulationEngine",
    "SimulationError",
    "SimulationResult",
    "TraceAvailabilityModel",
    "UP",
    "WorkerAnalysis",
    "__version__",
    "api",
    "available_heuristics",
    "canonical_heuristic",
    "create_scheduler",
    "encd_to_offline_mu1",
    "encd_to_offline_mu_inf",
    "evaluate_configuration",
    "figure2_series",
    "generate_scenarios",
    "get_criterion",
    "paper_platform",
    "random_markov_model",
    "random_markov_models",
    "register_heuristic",
    "render_gantt",
    "run_campaign",
    "run_instance",
    "run_scenario",
    "simulate",
    "solve_offline_mu1",
    "solve_offline_mu_inf",
    "summarize_results",
    "uniform_platform",
]


def test_api_facade_surface_is_pinned():
    assert sorted(repro.api.__all__) == API_SURFACE


def test_package_surface_is_pinned():
    assert sorted(repro.__all__) == PACKAGE_SURFACE


def test_hazard_substrates_are_discoverable():
    kinds = {info.name for info in repro.api.availability_models()}
    assert {"degradation", "correlated", "churn"} <= kinds
    names = repro.api.available_heuristics()
    assert "IE" in names and "RANDOM" in names


def test_every_advertised_name_exists():
    for name in repro.api.__all__:
        assert hasattr(repro.api, name), f"repro.api.__all__ advertises missing {name!r}"
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"
