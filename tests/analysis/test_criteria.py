"""Tests for the scheduling criteria (P, E, Y, AY)."""

import math

import pytest

from repro.analysis.communication import CommunicationEstimate
from repro.analysis.criteria import (
    PROACTIVE_CRITERIA,
    ApparentYieldCriterion,
    ExpectedTimeCriterion,
    ProbabilityCriterion,
    YieldCriterion,
    get_criterion,
)
from repro.analysis.evaluation import ConfigurationEstimate
from repro.application import Configuration


def make_estimate(probability=0.8, comm_time=4.0, comp_time=6.0, elapsed=0,
                  comm_probability=1.0):
    return ConfigurationEstimate(
        configuration=Configuration({0: 1}),
        workload=3,
        communication=CommunicationEstimate(
            expected_time=comm_time,
            success_probability=comm_probability,
            bottleneck_master=False,
            total_slots=4,
        ),
        computation_probability=probability,
        computation_time=comp_time,
        elapsed=elapsed,
    )


class TestCriterionValues:
    def test_probability(self):
        estimate = make_estimate(probability=0.5, comm_probability=0.8)
        assert ProbabilityCriterion().value(estimate) == pytest.approx(0.4)

    def test_expected_time(self):
        estimate = make_estimate(comm_time=3.0, comp_time=7.0)
        assert ExpectedTimeCriterion().value(estimate) == pytest.approx(10.0)

    def test_yield(self):
        estimate = make_estimate(probability=0.5, comm_time=2.0, comp_time=8.0, elapsed=10)
        assert YieldCriterion().value(estimate) == pytest.approx(0.5 / 20.0)

    def test_apparent_yield(self):
        estimate = make_estimate(probability=0.5, comm_time=2.0, comp_time=8.0, elapsed=10)
        assert ApparentYieldCriterion().value(estimate) == pytest.approx(0.5 / 10.0)


class TestComparisons:
    def test_higher_better_criteria(self):
        for criterion in (ProbabilityCriterion(), YieldCriterion(), ApparentYieldCriterion()):
            assert criterion.better(0.9, 0.5)
            assert not criterion.better(0.5, 0.9)
            assert not criterion.better(0.5, 0.5)  # strict comparison

    def test_lower_better_criterion(self):
        criterion = ExpectedTimeCriterion()
        assert criterion.better(5.0, 9.0)
        assert not criterion.better(9.0, 5.0)
        assert not criterion.better(5.0, 5.0)

    def test_nan_handling(self):
        criterion = ProbabilityCriterion()
        assert not criterion.better(float("nan"), 0.1)
        assert criterion.better(0.1, float("nan"))

    def test_worst_values(self):
        assert ProbabilityCriterion().worst() == -math.inf
        assert ExpectedTimeCriterion().worst() == math.inf

    def test_better_estimate(self):
        fast = make_estimate(comp_time=2.0)
        slow = make_estimate(comp_time=20.0)
        assert ExpectedTimeCriterion().better_estimate(fast, slow)
        assert not ExpectedTimeCriterion().better_estimate(slow, fast)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("P", ProbabilityCriterion),
        ("e", ExpectedTimeCriterion),
        ("Y", YieldCriterion),
        ("ay", ApparentYieldCriterion),
    ])
    def test_get_criterion(self, name, cls):
        assert isinstance(get_criterion(name), cls)

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            get_criterion("Z")

    def test_proactive_criteria_exclude_apparent_yield(self):
        assert "AY" not in PROACTIVE_CRITERIA
        assert set(PROACTIVE_CRITERIA) == {"P", "E", "Y"}
        assert not ApparentYieldCriterion().proactive_safe
        for name in PROACTIVE_CRITERIA:
            assert get_criterion(name).proactive_safe
