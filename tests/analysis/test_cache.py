"""Tests for the AnalysisContext caching layer."""

import pytest

from repro.analysis.cache import AnalysisContext
from repro.analysis.evaluation import evaluate_configuration
from repro.analysis.group import ExpectationMode
from repro.application import Configuration
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.platform import Platform, Processor


@pytest.fixture
def platform():
    stays = [(0.96, 0.9, 0.9), (0.94, 0.92, 0.9), (0.91, 0.9, 0.93), (0.98, 0.95, 0.9)]
    processors = [
        Processor(
            speed=index + 1,
            capacity=4,
            availability=MarkovAvailabilityModel(paper_transition_matrix(list(stay))),
        )
        for index, stay in enumerate(stays)
    ]
    return Platform(processors, ncom=2, tprog=3, tdata=1)


class TestAnalysisContext:
    def test_worker_metadata(self, platform):
        context = AnalysisContext(platform)
        assert context.num_workers == 4
        assert context.worker(2).speed == 3
        assert context.worker(3).capacity == 4

    def test_evaluate_matches_reference_implementation(self, platform):
        context = AnalysisContext(platform)
        config = Configuration({0: 2, 1: 1, 3: 1})
        cached = context.evaluate(config, has_program=[0], elapsed=4)
        reference = evaluate_configuration(
            context.group, platform, config, has_program=[0], elapsed=4
        )
        assert cached.success_probability == pytest.approx(reference.success_probability)
        assert cached.expected_time == pytest.approx(reference.expected_time)
        assert cached.yield_value == pytest.approx(reference.yield_value)

    def test_evaluate_with_progress_matches_reference(self, platform):
        context = AnalysisContext(platform)
        config = Configuration({1: 2, 2: 1})
        cached = context.evaluate(
            config, comm_slots={1: 0, 2: 2}, completed_work=1, elapsed=9
        )
        reference = evaluate_configuration(
            context.group, platform, config, comm_slots={1: 0, 2: 2},
            completed_work=1, elapsed=9,
        )
        assert cached.expected_time == pytest.approx(reference.expected_time)
        assert cached.workload == reference.workload

    def test_communication_cache_hit(self, platform):
        context = AnalysisContext(platform)
        first = context.communication({0: 3, 1: 2})
        second = context.communication({1: 2, 0: 3})
        assert first is second
        stats = context.cache_stats()
        assert stats["communication_keys"] == 1

    def test_single_expected_time_cached_and_consistent(self, platform):
        context = AnalysisContext(platform)
        value = context.single_expected_time(0, 5)
        again = context.single_expected_time(0, 5)
        assert value == again
        expected = context.group.quantities((0,)).expected_time(5, context.mode)
        assert value == pytest.approx(expected)
        assert context.single_expected_time(0, 0) == 0.0

    def test_no_down_probability_passthrough(self, platform):
        context = AnalysisContext(platform)
        assert context.no_down_probability(1, 4) == pytest.approx(
            context.worker(1).no_down_probability(4)
        )

    def test_clear_caches(self, platform):
        context = AnalysisContext(platform)
        context.evaluate(Configuration({0: 1, 1: 1}))
        context.single_expected_time(0, 3)
        assert context.cache_stats()["group_sets"] > 0
        context.clear_caches()
        stats = context.cache_stats()
        assert stats["group_sets"] == 0
        assert stats["communication_keys"] == 0

    def test_mode_is_used(self, platform):
        paper = AnalysisContext(platform, mode=ExpectationMode.PAPER)
        renewal = AnalysisContext(platform, mode=ExpectationMode.RENEWAL)
        config = Configuration({0: 2, 2: 2})
        assert renewal.evaluate(config).expected_time <= paper.evaluate(config).expected_time + 1e-9

    def test_mode_change_drops_stale_memos(self, platform):
        # The computation/communication memos cache mode-dependent values;
        # switching estimators mid-life must not replay them.
        context = AnalysisContext(platform, mode=ExpectationMode.PAPER)
        config = Configuration({0: 2, 2: 2})
        paper_estimate = context.evaluate(config)
        context.mode = ExpectationMode.RENEWAL
        renewal_estimate = context.evaluate(config)
        fresh = AnalysisContext(platform, mode=ExpectationMode.RENEWAL)
        assert renewal_estimate.computation_time == fresh.evaluate(config).computation_time
        assert renewal_estimate.computation_time != paper_estimate.computation_time
