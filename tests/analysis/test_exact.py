"""Tests for the exact joint-chain analysis, and cross-validation of Theorem 5.1.

The exact computation is itself validated against Monte-Carlo simulation for
a two-worker set, then used as a (much tighter) ground truth for the
truncated-series/renewal approximations of :mod:`repro.analysis.group`.
"""

import math

import numpy as np
import pytest

from repro.analysis.exact import (
    ExactGroupQuantities,
    exact_expected_time,
    exact_group_quantities,
)
from repro.analysis.group import ExpectationMode, GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.availability.generators import paper_transition_matrix, random_markov_models
from repro.availability.markov import MarkovAvailabilityModel
from repro.types import DOWN, UP


def make_models(stays):
    return [MarkovAvailabilityModel(paper_transition_matrix(list(stay))) for stay in stays]


class TestExactGroupQuantities:
    def test_empty_set(self):
        quantities = exact_group_quantities([])
        assert quantities.p_plus == 1.0
        assert quantities.expected_time(5) == 5.0

    def test_single_reliable_worker(self):
        quantities = exact_group_quantities([MarkovAvailabilityModel.always_up()])
        assert quantities.p_plus == pytest.approx(1.0)
        assert quantities.expected_gap == pytest.approx(1.0)
        assert quantities.expected_time(7) == pytest.approx(7.0)

    def test_single_worker_closed_form(self):
        # For a single worker the first-return analysis can be checked against
        # a direct absorbing-chain computation.
        model = make_models([(0.9, 0.8, 0.9)])[0]
        quantities = exact_group_quantities([model])
        sub = model.up_reclaimed_submatrix()
        # h = P(return to UP before DOWN | start RECLAIMED)
        h = sub[1, 0] / (1.0 - sub[1, 1] * 1.0) if False else None
        # Solve exactly: h = p_ru + p_rr * h  ->  h = p_ru / (1 - p_rr)
        h = sub[1, 0] / (1.0 - sub[1, 1])
        expected_p_plus = sub[0, 0] + sub[0, 1] * h
        assert quantities.p_plus == pytest.approx(expected_p_plus, rel=1e-12)

    def test_matches_monte_carlo(self):
        models = make_models([(0.93, 0.9, 0.9), (0.95, 0.92, 0.9)])
        quantities = exact_group_quantities(models)
        rng = np.random.default_rng(4)
        trials = 20_000
        successes = 0
        gaps = []
        for _ in range(trials):
            states = [UP for _ in models]
            gap = 0
            while True:
                gap += 1
                states = [m.next_state(s, rng) for m, s in zip(models, states)]
                if any(s == DOWN for s in states):
                    break
                if all(s == UP for s in states):
                    successes += 1
                    gaps.append(gap)
                    break
        assert successes / trials == pytest.approx(quantities.p_plus, abs=0.01)
        assert float(np.mean(gaps)) == pytest.approx(quantities.expected_gap, rel=0.03)

    def test_workload_edge_cases(self):
        quantities = ExactGroupQuantities(p_plus=0.5, expected_gap=3.0)
        assert quantities.expected_time(0) == 0.0
        assert quantities.expected_time(1) == 1.0
        assert quantities.success_probability(1) == 1.0
        assert quantities.success_probability(3) == pytest.approx(0.25)

    def test_zero_success_probability(self):
        quantities = ExactGroupQuantities(p_plus=0.0, expected_gap=math.inf)
        assert quantities.expected_time(5) == math.inf

    def test_too_many_workers_rejected(self):
        models = [MarkovAvailabilityModel.always_up()] * 20
        with pytest.raises(ValueError):
            exact_group_quantities(models)

    def test_exact_expected_time_helper(self):
        models = make_models([(0.95, 0.9, 0.9)])
        assert exact_expected_time(models, 4) == pytest.approx(
            exact_group_quantities(models).expected_time(4)
        )


class TestApproximationAgainstExact:
    @pytest.mark.parametrize("stays", [
        [(0.95, 0.90, 0.90)],
        [(0.93, 0.90, 0.90), (0.96, 0.92, 0.90)],
        [(0.95, 0.9, 0.9), (0.92, 0.95, 0.9), (0.97, 0.91, 0.93)],
    ])
    def test_p_plus_matches_exact(self, stays):
        models = make_models(stays)
        exact = exact_group_quantities(models)
        approx = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-10)
        quantities = approx.quantities(range(len(models)))
        assert quantities.p_plus == pytest.approx(exact.p_plus, rel=1e-6)

    @pytest.mark.parametrize("workload", [2, 5, 12])
    def test_renewal_expectation_matches_exact(self, workload):
        models = make_models([(0.95, 0.9, 0.9), (0.93, 0.92, 0.9)])
        exact = exact_group_quantities(models)
        approx = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-10)
        quantities = approx.quantities([0, 1])
        renewal = quantities.expected_time(workload, ExpectationMode.RENEWAL)
        assert renewal == pytest.approx(exact.expected_time(workload), rel=1e-6)
        # The paper's closed form is an upper bound on the exact expectation.
        paper = quantities.expected_time(workload, ExpectationMode.PAPER)
        assert paper >= exact.expected_time(workload) - 1e-9

    def test_random_models_cross_check(self):
        models = random_markov_models(3, seed=77)
        exact = exact_group_quantities(models)
        approx = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-12)
        quantities = approx.quantities(range(3))
        assert quantities.p_plus == pytest.approx(exact.p_plus, rel=1e-8)
        assert quantities.expected_gap() == pytest.approx(exact.expected_gap, rel=1e-6)
