"""Monte-Carlo cross-validation of the Theorem 5.1 approximations.

These tests simulate the Markov chains directly and compare the empirical
estimates of ``P₊^(S)`` (probability of being simultaneously UP again before
any failure) and ``E^(S)(W)`` (conditional duration of a W-slot workload)
against the analytical values.  The renewal-mode estimator is the exact
conditional expectation, so the Monte-Carlo estimate must match it within
statistical tolerance; the paper-mode estimator is an upper bound whenever
failures are possible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.analysis.group import ExpectationMode, GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.types import DOWN, UP

pytestmark = pytest.mark.slow


def make_models(stays) -> List[MarkovAvailabilityModel]:
    return [MarkovAvailabilityModel(paper_transition_matrix(list(stay))) for stay in stays]


def simulate_gap(models, rng) -> Tuple[bool, int]:
    """Simulate from all-UP until the next all-UP slot or the first failure.

    Returns (success, gap length).
    """
    states = [UP for _ in models]
    t = 0
    while True:
        t += 1
        states = [model.next_state(state, rng) for model, state in zip(models, states)]
        if any(state == DOWN for state in states):
            return False, t
        if all(state == UP for state in states):
            return True, t


def simulate_workload(models, workload, rng) -> Tuple[bool, int]:
    """Simulate a W-slot tightly-coupled computation; returns (success, duration)."""
    remaining = workload - 1  # the first compute slot happens at t = 0
    duration = 1
    states = [UP for _ in models]
    while remaining > 0:
        duration += 1
        states = [model.next_state(state, rng) for model, state in zip(models, states)]
        if any(state == DOWN for state in states):
            return False, duration
        if all(state == UP for state in states):
            remaining -= 1
    return True, duration


class TestProbabilityOfSuccess:
    def test_p_plus_matches_simulation_two_workers(self):
        stays = [(0.93, 0.90, 0.90), (0.95, 0.92, 0.90)]
        models = make_models(stays)
        analysis = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-9)
        quantities = analysis.quantities([0, 1])

        rng = np.random.default_rng(1234)
        trials = 20_000
        successes = sum(simulate_gap(models, rng)[0] for _ in range(trials))
        empirical = successes / trials
        assert empirical == pytest.approx(quantities.p_plus, abs=0.015)

    def test_p_plus_matches_simulation_three_workers(self):
        stays = [(0.96, 0.9, 0.9), (0.94, 0.93, 0.9), (0.92, 0.9, 0.95)]
        models = make_models(stays)
        analysis = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-9)
        quantities = analysis.quantities([0, 1, 2])

        rng = np.random.default_rng(99)
        trials = 20_000
        successes = sum(simulate_gap(models, rng)[0] for _ in range(trials))
        assert successes / trials == pytest.approx(quantities.p_plus, abs=0.015)

    def test_workload_success_probability_matches_simulation(self):
        stays = [(0.95, 0.9, 0.9), (0.93, 0.9, 0.9)]
        models = make_models(stays)
        analysis = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-9)
        quantities = analysis.quantities([0, 1])
        workload = 4

        rng = np.random.default_rng(7)
        trials = 12_000
        successes = sum(simulate_workload(models, workload, rng)[0] for _ in range(trials))
        assert successes / trials == pytest.approx(
            quantities.success_probability(workload), abs=0.02
        )


class TestConditionalExpectedDuration:
    def test_expected_gap_matches_simulation(self):
        stays = [(0.93, 0.9, 0.9), (0.95, 0.92, 0.9)]
        models = make_models(stays)
        analysis = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-9)
        quantities = analysis.quantities([0, 1])

        rng = np.random.default_rng(5)
        gaps = []
        for _ in range(20_000):
            success, gap = simulate_gap(models, rng)
            if success:
                gaps.append(gap)
        assert np.mean(gaps) == pytest.approx(quantities.expected_gap(), rel=0.05)

    def test_renewal_expectation_matches_simulation(self):
        stays = [(0.95, 0.9, 0.9), (0.94, 0.92, 0.9)]
        models = make_models(stays)
        analysis = GroupAnalysis([WorkerAnalysis(m) for m in models], epsilon=1e-9)
        quantities = analysis.quantities([0, 1])
        workload = 5

        rng = np.random.default_rng(21)
        durations = []
        for _ in range(15_000):
            success, duration = simulate_workload(models, workload, rng)
            if success:
                durations.append(duration)
        empirical = float(np.mean(durations))
        renewal = quantities.expected_time(workload, ExpectationMode.RENEWAL)
        paper = quantities.expected_time(workload, ExpectationMode.PAPER)
        assert empirical == pytest.approx(renewal, rel=0.05)
        assert paper >= renewal  # the paper's closed form is the conservative one

    def test_no_failure_expected_time_matches_simulation(self):
        # Workers that never crash but are frequently reclaimed.
        matrix = np.array([[0.7, 0.3, 0.0], [0.5, 0.5, 0.0], [0.0, 0.0, 1.0]])
        models = [
            MarkovAvailabilityModel(matrix, down_recoverable=False) for _ in range(2)
        ]
        analysis = GroupAnalysis([WorkerAnalysis(m) for m in models])
        quantities = analysis.quantities([0, 1])
        workload = 6

        rng = np.random.default_rng(3)
        durations = [simulate_workload(models, workload, rng)[1] for _ in range(8_000)]
        expected = quantities.expected_time(workload, ExpectationMode.PAPER)
        assert float(np.mean(durations)) == pytest.approx(expected, rel=0.05)
