"""Tests for the communication-phase estimates of Section V-B."""

import math

import pytest

from repro.analysis.communication import estimate_communication
from repro.analysis.group import ExpectationMode, GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel


def make_analysis(stays):
    workers = [
        WorkerAnalysis(MarkovAvailabilityModel(paper_transition_matrix(list(stay))))
        for stay in stays
    ]
    return GroupAnalysis(workers, epsilon=1e-9)


@pytest.fixture
def analysis():
    return make_analysis([(0.95, 0.9, 0.9), (0.92, 0.9, 0.9), (0.97, 0.93, 0.9)])


class TestEstimateCommunication:
    def test_no_communication_needed(self, analysis):
        estimate = estimate_communication(analysis, {0: 0, 1: 0}, ncom=2)
        assert estimate.expected_time == 0.0
        assert estimate.success_probability == 1.0
        assert estimate.total_slots == 0
        assert not estimate.bottleneck_master

    def test_empty_mapping(self, analysis):
        estimate = estimate_communication(analysis, {}, ncom=1)
        assert estimate.expected_time == 0.0
        assert estimate.success_probability == 1.0

    def test_single_worker_matches_group_expectation(self, analysis):
        slots = 6
        estimate = estimate_communication(analysis, {0: slots}, ncom=2)
        expected = analysis.quantities((0,)).expected_time(slots)
        assert estimate.expected_time == pytest.approx(expected)

    def test_per_worker_maximum_below_ncom(self, analysis):
        estimate = estimate_communication(analysis, {0: 3, 1: 8}, ncom=5)
        worst = max(
            analysis.quantities((0,)).expected_time(3),
            analysis.quantities((1,)).expected_time(8),
        )
        assert estimate.expected_time == pytest.approx(worst)
        assert not estimate.bottleneck_master

    def test_bandwidth_bound_kicks_in_above_ncom(self, analysis):
        # Three workers share a single channel: the Σ n_q / ncom term dominates.
        estimate = estimate_communication(analysis, {0: 10, 1: 10, 2: 10}, ncom=1)
        assert estimate.expected_time >= 30.0
        assert estimate.bottleneck_master
        assert estimate.total_slots == 30

    def test_probability_decreases_with_more_workers(self, analysis):
        one = estimate_communication(analysis, {0: 5}, ncom=5)
        three = estimate_communication(analysis, {0: 5, 1: 5, 2: 5}, ncom=5)
        assert three.success_probability < one.success_probability

    def test_workers_with_zero_slots_still_at_risk(self, analysis):
        alone = estimate_communication(analysis, {0: 5}, ncom=5)
        with_bystander = estimate_communication(analysis, {0: 5, 1: 0}, ncom=5)
        assert with_bystander.expected_time == pytest.approx(alone.expected_time)
        assert with_bystander.success_probability < alone.success_probability

    def test_probability_matches_no_down_product(self, analysis):
        estimate = estimate_communication(analysis, {0: 4, 1: 2}, ncom=2)
        duration = int(math.ceil(estimate.expected_time))
        expected = (
            analysis.worker(0).no_down_probability(duration)
            * analysis.worker(1).no_down_probability(duration)
        )
        assert estimate.success_probability == pytest.approx(expected)

    def test_negative_slots_rejected(self, analysis):
        with pytest.raises(ValueError):
            estimate_communication(analysis, {0: -1}, ncom=1)

    def test_invalid_ncom_rejected(self, analysis):
        with pytest.raises(ValueError):
            estimate_communication(analysis, {0: 1}, ncom=0)

    def test_renewal_mode_not_larger_than_paper_mode(self, analysis):
        paper = estimate_communication(analysis, {0: 6, 1: 4}, ncom=5, mode=ExpectationMode.PAPER)
        renewal = estimate_communication(
            analysis, {0: 6, 1: 4}, ncom=5, mode=ExpectationMode.RENEWAL
        )
        assert renewal.expected_time <= paper.expected_time + 1e-9
