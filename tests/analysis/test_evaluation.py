"""Tests for configuration evaluation (probability / time / yield estimates)."""

import math

import pytest

from repro.analysis.evaluation import evaluate_configuration
from repro.analysis.group import ExpectationMode, GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.application import Configuration
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel
from repro.platform import Platform, Processor


@pytest.fixture
def platform():
    stays = [(0.97, 0.9, 0.9), (0.95, 0.92, 0.9), (0.90, 0.9, 0.9)]
    speeds = [1, 2, 4]
    processors = [
        Processor(
            speed=speed,
            capacity=5,
            availability=MarkovAvailabilityModel(paper_transition_matrix(list(stay))),
        )
        for stay, speed in zip(stays, speeds)
    ]
    return Platform(processors, ncom=2, tprog=5, tdata=1)


@pytest.fixture
def analysis(platform):
    workers = [
        WorkerAnalysis(proc.availability, speed=proc.speed, capacity=proc.capacity)
        for proc in platform.processors
    ]
    return GroupAnalysis(workers, epsilon=1e-9)


class TestEvaluateConfiguration:
    def test_fresh_configuration(self, analysis, platform):
        config = Configuration({0: 2, 1: 1})
        estimate = evaluate_configuration(analysis, platform, config)
        assert estimate.workload == config.workload(platform)
        assert 0.0 < estimate.success_probability <= 1.0
        assert estimate.expected_time >= estimate.workload
        assert estimate.communication.total_slots == sum(
            config.communication_slots(platform).values()
        )

    def test_program_possession_reduces_expected_time(self, analysis, platform):
        config = Configuration({0: 2, 1: 1})
        fresh = evaluate_configuration(analysis, platform, config)
        cached = evaluate_configuration(analysis, platform, config, has_program=[0, 1])
        assert cached.communication.total_slots < fresh.communication.total_slots
        assert cached.expected_time < fresh.expected_time
        assert cached.success_probability >= fresh.success_probability

    def test_received_data_reduces_communication(self, analysis, platform):
        config = Configuration({0: 3})
        partial = evaluate_configuration(
            analysis, platform, config, has_program=[0], received_data={0: 2}
        )
        assert partial.communication.total_slots == platform.tdata  # one message left

    def test_explicit_comm_slots_override(self, analysis, platform):
        config = Configuration({0: 1, 1: 1})
        estimate = evaluate_configuration(
            analysis, platform, config, comm_slots={0: 0, 1: 0}
        )
        assert estimate.communication.expected_time == 0.0

    def test_completed_work_reduces_remaining(self, analysis, platform):
        config = Configuration({2: 2})  # workload = 8
        full = evaluate_configuration(analysis, platform, config, comm_slots={2: 0})
        partial = evaluate_configuration(
            analysis, platform, config, comm_slots={2: 0}, completed_work=6
        )
        done = evaluate_configuration(
            analysis, platform, config, comm_slots={2: 0}, completed_work=20
        )
        assert partial.workload == 2
        assert partial.expected_time < full.expected_time
        assert done.workload == 0
        assert done.expected_time == 0.0
        assert done.success_probability == 1.0

    def test_empty_configuration(self, analysis, platform):
        estimate = evaluate_configuration(analysis, platform, Configuration.empty())
        assert estimate.expected_time == 0.0
        assert estimate.success_probability == 1.0

    def test_yield_uses_elapsed(self, analysis, platform):
        config = Configuration({0: 1})
        early = evaluate_configuration(analysis, platform, config, elapsed=0)
        late = evaluate_configuration(analysis, platform, config, elapsed=100)
        assert late.yield_value < early.yield_value
        assert late.apparent_yield == pytest.approx(early.apparent_yield)

    def test_yield_degenerate_cases(self, analysis, platform):
        estimate = evaluate_configuration(analysis, platform, Configuration.empty())
        assert estimate.apparent_yield == math.inf
        assert estimate.yield_value == math.inf

    def test_invalid_arguments(self, analysis, platform):
        config = Configuration({0: 1})
        with pytest.raises(ValueError):
            evaluate_configuration(analysis, platform, config, completed_work=-1)
        with pytest.raises(ValueError):
            evaluate_configuration(analysis, platform, config, elapsed=-1)

    def test_probability_is_product_of_comm_and_comp(self, analysis, platform):
        config = Configuration({0: 1, 2: 1})
        estimate = evaluate_configuration(analysis, platform, config)
        assert estimate.success_probability == pytest.approx(
            estimate.communication.success_probability * estimate.computation_probability
        )

    def test_renewal_mode_is_not_slower(self, analysis, platform):
        config = Configuration({0: 2, 1: 2})
        paper = evaluate_configuration(analysis, platform, config, mode=ExpectationMode.PAPER)
        renewal = evaluate_configuration(analysis, platform, config, mode=ExpectationMode.RENEWAL)
        assert renewal.expected_time <= paper.expected_time + 1e-9

    def test_describe(self, analysis, platform):
        estimate = evaluate_configuration(analysis, platform, Configuration({0: 1}))
        assert "P=" in estimate.describe()


class TestSlowerWorkerHurtsEstimate:
    def test_adding_unreliable_slow_worker_lowers_probability(self, analysis, platform):
        reliable_only = evaluate_configuration(analysis, platform, Configuration({0: 2}))
        with_flaky = evaluate_configuration(analysis, platform, Configuration({0: 1, 2: 1}))
        assert with_flaky.computation_probability < reliable_only.computation_probability
