"""Property tests for the proactive anti-divergence constraint (Section VI-B).

The paper requires that a proactive switching criterion never rate a running
configuration *worse* as it accumulates progress — otherwise the scheduler
could oscillate between configurations forever.  For the three admitted
criteria this means, for a fixed configuration evaluated at a fixed instant:

* **P** — the probability of completing the *remaining* work is non-decreasing
  in the completed work;
* **E** — the expected *remaining* time is non-increasing in the completed
  work and in the already-performed communication;
* **Y** — the yield is non-decreasing when progress is made while the
  iteration clock advances by the corresponding amount.

These are exactly the monotonicity facts the proactive implementation relies
on, so they are checked here property-style over random paper platforms.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import AnalysisContext
from repro.application import Configuration
from repro.platform import PlatformSpec, paper_platform


def make_context(seed: int) -> AnalysisContext:
    platform = paper_platform(
        PlatformSpec(num_processors=6, ncom=3, wmin=2), num_tasks=5, seed=seed
    )
    return AnalysisContext(platform)


def make_configuration(context: AnalysisContext, seed: int) -> Configuration:
    rng = np.random.default_rng(seed)
    workers = rng.choice(context.num_workers, size=3, replace=False)
    return Configuration({int(workers[0]): 2, int(workers[1]): 2, int(workers[2]): 1})


class TestAntiDivergenceMonotonicity:
    @given(seed=st.integers(0, 50), progress=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_probability_never_decreases_with_progress(self, seed, progress):
        context = make_context(seed % 7)
        configuration = make_configuration(context, seed)
        comm_done = {worker: 0 for worker in configuration.workers}
        before = context.evaluate(
            configuration, comm_slots=comm_done, completed_work=progress
        )
        after = context.evaluate(
            configuration, comm_slots=comm_done, completed_work=progress + 1
        )
        assert after.success_probability >= before.success_probability - 1e-12

    @given(seed=st.integers(0, 50), progress=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_expected_remaining_time_never_increases_with_progress(self, seed, progress):
        context = make_context(seed % 7)
        configuration = make_configuration(context, seed)
        comm_done = {worker: 0 for worker in configuration.workers}
        before = context.evaluate(
            configuration, comm_slots=comm_done, completed_work=progress
        )
        after = context.evaluate(
            configuration, comm_slots=comm_done, completed_work=progress + 1
        )
        assert after.expected_time <= before.expected_time + 1e-9

    @given(seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_remaining_communication_only_shrinks_expected_time(self, seed):
        context = make_context(seed % 7)
        configuration = make_configuration(context, seed)
        full = configuration.communication_slots(context.platform)
        partially_done = {worker: max(slots - 2, 0) for worker, slots in full.items()}
        before = context.evaluate(configuration, comm_slots=full)
        after = context.evaluate(configuration, comm_slots=partially_done)
        assert after.expected_time <= before.expected_time + 1e-9
        assert after.success_probability >= before.success_probability - 1e-12

    @given(seed=st.integers(0, 50), elapsed=st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_yield_improves_when_a_compute_slot_succeeds(self, seed, elapsed):
        """One more completed slot (and one more elapsed slot) never hurts the yield."""
        context = make_context(seed % 7)
        configuration = make_configuration(context, seed)
        comm_done = {worker: 0 for worker in configuration.workers}
        before = context.evaluate(
            configuration, comm_slots=comm_done, completed_work=0, elapsed=elapsed
        )
        after = context.evaluate(
            configuration, comm_slots=comm_done, completed_work=1, elapsed=elapsed + 1
        )
        assert after.yield_value >= before.yield_value - 1e-12
