"""Tests for per-processor analysis quantities (WorkerAnalysis)."""

import numpy as np
import pytest

from repro.analysis.single import WorkerAnalysis
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel


def make_analysis(stay=(0.95, 0.9, 0.9), speed=2):
    model = MarkovAvailabilityModel(paper_transition_matrix(list(stay)))
    return WorkerAnalysis(model, speed=speed, capacity=3)


class TestWorkerAnalysis:
    def test_carries_speed_and_capacity(self):
        analysis = make_analysis(speed=4)
        assert analysis.speed == 4
        assert analysis.capacity == 3

    def test_lambda1_in_unit_interval(self):
        analysis = make_analysis()
        assert 0.0 < analysis.lambda1 < 1.0

    def test_up_return_array_matches_model(self):
        analysis = make_analysis()
        array = analysis.up_return_array(30)
        expected = analysis.model.up_return_probabilities(30)
        assert np.allclose(array, expected)

    def test_up_return_array_grows_and_caches(self):
        analysis = make_analysis()
        short = analysis.up_return_array(5).copy()
        longer = analysis.up_return_array(20)
        assert np.allclose(longer[:5], short)
        assert analysis.up_return_array(10).shape == (10,)

    def test_up_return_probability_scalar(self):
        analysis = make_analysis()
        assert analysis.up_return_probability(0) == 1.0
        assert analysis.up_return_probability(3) == pytest.approx(
            float(analysis.model.up_return_probability(3))
        )

    def test_no_down_array_matches_matrix_power(self):
        analysis = make_analysis()
        sub = analysis.model.up_reclaimed_submatrix()
        values = analysis.no_down_array(15)
        for t in range(1, 16):
            expected = np.linalg.matrix_power(sub, t)[0, :].sum()
            assert values[t - 1] == pytest.approx(expected, rel=1e-9)

    def test_no_down_scalar_beyond_cache(self):
        analysis = make_analysis()
        analysis.no_down_array(5)
        value = analysis.no_down_probability(50)
        expected = analysis.model.no_down_probability(50)
        assert value == pytest.approx(expected, rel=1e-9)

    def test_no_down_zero(self):
        assert make_analysis().no_down_probability(0) == 1.0

    def test_negative_horizons_rejected(self):
        analysis = make_analysis()
        with pytest.raises(ValueError):
            analysis.up_return_array(-1)
        with pytest.raises(ValueError):
            analysis.no_down_probability(-2)

    def test_can_fail(self):
        assert make_analysis().can_fail()
        reliable = WorkerAnalysis(MarkovAvailabilityModel.always_up())
        assert not reliable.can_fail()

    def test_up_stationary_no_failure(self):
        # A chain that alternates between UP and RECLAIMED only.
        matrix = np.array([[0.8, 0.2, 0.0], [0.4, 0.6, 0.0], [0.0, 0.0, 1.0]])
        model = MarkovAvailabilityModel(matrix, down_recoverable=False)
        analysis = WorkerAnalysis(model)
        # pi_u = p_ru / (p_ur + p_ru) = 0.4 / 0.6
        assert analysis.up_stationary_no_failure() == pytest.approx(0.4 / 0.6)

    def test_up_stationary_always_up(self):
        analysis = WorkerAnalysis(MarkovAvailabilityModel.always_up())
        assert analysis.up_stationary_no_failure() == 1.0

    def test_defective_chain_falls_back_to_matrix_powers(self):
        # Identical diagonal entries make the two eigenvalues coincide.
        matrix = np.array([[0.9, 0.0, 0.1], [0.0, 0.9, 0.1], [0.5, 0.0, 0.5]])
        model = MarkovAvailabilityModel(matrix)
        analysis = WorkerAnalysis(model)
        sub = model.up_reclaimed_submatrix()
        for t in (1, 4, 9):
            expected = np.linalg.matrix_power(sub, t)[0, :].sum()
            assert analysis.no_down_probability(t) == pytest.approx(expected, rel=1e-9)

    def test_describe(self):
        assert "lambda1" in make_analysis().describe()
