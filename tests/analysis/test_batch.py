"""Property tests for the batched Theorem 5.1 kernels.

Two layers of guarantees are pinned here:

1. **Agreement with the scalar path** — `BatchGroupAnalysis` replays the
   scalar float operations exactly (see its module docstring), so its
   quantities must agree with `GroupAnalysis` far below any meaningful
   tolerance; the hypothesis sweep asserts 1e-12 agreement on random Markov
   models, and a deterministic case pins full bit-equality.
2. **Agreement with the exact joint chain** — for small sets the truncated
   series must reproduce `analysis/exact.py` within the truncation bound of
   Theorem 5.1, batched exactly like scalar.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.batch import BatchGroupAnalysis, BatchGroupQuantities
from repro.analysis.exact import exact_group_quantities
from repro.analysis.group import ExpectationMode, GroupAnalysis
from repro.analysis.single import WorkerAnalysis
from repro.availability.generators import random_markov_models


def make_workers(num, seed):
    return [WorkerAnalysis(model) for model in random_markov_models(num, seed=seed)]


def quantities_equal(left, right, *, tolerance=0.0):
    for field in ("eu", "a", "p_plus", "e_c"):
        a = getattr(left, field)
        b = getattr(right, field)
        if math.isinf(a) or math.isinf(b):
            if a != b:
                return False
        elif abs(a - b) > tolerance * max(1.0, abs(a)):
            return False
    return left.horizon == right.horizon and left.can_fail == right.can_fail


class TestBatchMatchesScalar:
    @given(
        model_seed=st.integers(min_value=0, max_value=10_000),
        subset_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_models_match_to_1e12(self, model_seed, subset_seed):
        workers = make_workers(6, model_seed)
        rng = np.random.default_rng(subset_seed)
        sets = [
            tuple(sorted(rng.choice(6, size=int(rng.integers(1, 7)), replace=False)))
            for _ in range(20)
        ]
        scalar = GroupAnalysis(workers, epsilon=1e-6)
        batch = BatchGroupAnalysis(workers, epsilon=1e-6).quantities(sets)
        for index, workers_set in enumerate(sets):
            reference = scalar.quantities(workers_set)
            assert quantities_equal(reference, batch[index], tolerance=1e-12), (
                f"set {workers_set}: scalar {reference} != batch {batch[index]}"
            )

    def test_all_subsets_bit_identical(self):
        """Deterministic pin of the stronger guarantee: byte-for-byte equality."""
        workers = make_workers(8, 3)
        sets = [s for k in range(0, 9) for s in itertools.combinations(range(8), k)]
        scalar = GroupAnalysis(workers, epsilon=1e-6)
        batch = BatchGroupAnalysis(workers, epsilon=1e-6).quantities(sets)
        for index, workers_set in enumerate(sets):
            assert scalar.quantities(workers_set) == batch[index]

    def test_membership_matrix_input(self):
        workers = make_workers(5, 11)
        membership = np.zeros((3, 5), dtype=bool)
        membership[0, [0, 2]] = True
        membership[1, [1, 2, 3, 4]] = True
        # row 2 stays empty
        batch = BatchGroupAnalysis(workers).quantities(membership)
        scalar = GroupAnalysis(workers)
        assert batch[0] == scalar.quantities([0, 2])
        assert batch[1] == scalar.quantities([1, 2, 3, 4])
        assert batch[2] == scalar.quantities([])

    def test_mixed_failing_and_reliable_workers(self):
        from repro.availability.markov import MarkovAvailabilityModel

        models = random_markov_models(4, seed=9) + [MarkovAvailabilityModel.always_up()]
        workers = [WorkerAnalysis(model) for model in models]
        sets = [(4,), (0, 4), (1, 2, 4), (0, 1, 2, 3, 4)]
        scalar = GroupAnalysis(workers)
        batch = BatchGroupAnalysis(workers).quantities(sets)
        for index, workers_set in enumerate(sets):
            assert scalar.quantities(workers_set) == batch[index]
        assert not batch[0].can_fail
        assert batch.p_plus[0] == 1.0

    def test_shared_cache_through_group_analysis(self):
        workers = make_workers(6, 5)
        analysis = GroupAnalysis(workers)
        first = analysis.quantities_batch([(0, 1), (2, 3), (0, 1)])
        assert first[0] is first[2]  # same cached object
        # A scalar call after the batch must hit the same cache entry.
        assert analysis.quantities((0, 1)) is first[0]
        assert analysis.cache_size() == 2

    def test_out_of_range_worker_rejected(self):
        workers = make_workers(3, 1)
        with pytest.raises(IndexError):
            BatchGroupAnalysis(workers).quantities([(0, 7)])
        with pytest.raises(IndexError):
            GroupAnalysis(workers).quantities_batch([(0, 7)])

    def test_incremental_calls_grow_shared_grid(self):
        workers = make_workers(6, 21)
        scalar = GroupAnalysis(workers)
        batch_analysis = BatchGroupAnalysis(workers)
        rng = np.random.default_rng(2)
        for _ in range(8):
            sets = [
                tuple(sorted(rng.choice(6, size=int(rng.integers(1, 7)), replace=False)))
                for _ in range(7)
            ]
            batch = batch_analysis.quantities(sets)
            for index, workers_set in enumerate(sets):
                assert scalar.quantities(workers_set) == batch[index]


class TestBatchMatchesExact:
    @given(model_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_p_plus_within_truncation_bound(self, model_seed):
        """Batched P₊ and gap match the exact joint chain for ≤ 6 workers."""
        models = random_markov_models(6, seed=model_seed)
        workers = [WorkerAnalysis(model) for model in models]
        sets = [(0,), (0, 1), (0, 1, 2), (1, 3, 4, 5), tuple(range(6))]
        batch = BatchGroupAnalysis(workers, epsilon=1e-10).quantities(sets)
        for index, workers_set in enumerate(sets):
            exact = exact_group_quantities([models[w] for w in workers_set])
            assert batch.p_plus[index] == pytest.approx(exact.p_plus, rel=1e-6)
            assert batch.expected_gap()[index] == pytest.approx(
                exact.expected_gap, rel=1e-5
            )

    def test_renewal_expectation_matches_exact(self):
        models = random_markov_models(4, seed=13)
        workers = [WorkerAnalysis(model) for model in models]
        batch = BatchGroupAnalysis(workers, epsilon=1e-10).quantities([(0, 1), (2, 3)])
        for index, workers_set in enumerate([(0, 1), (2, 3)]):
            exact = exact_group_quantities([models[w] for w in workers_set])
            for workload in (2, 7):
                renewal = batch.expected_time(
                    np.full(2, workload), ExpectationMode.RENEWAL
                )[index]
                assert renewal == pytest.approx(exact.expected_time(workload), rel=1e-6)
                # The paper's closed form stays an upper bound, batched too.
                paper = batch.expected_time(np.full(2, workload))[index]
                assert paper >= exact.expected_time(workload) - 1e-9


class TestBatchGroupQuantities:
    def make_batch(self):
        workers = make_workers(5, 17)
        return BatchGroupAnalysis(workers).quantities([(0, 1, 2), (3,), ()])

    def test_vectorised_methods_match_scalar_methods(self):
        batch = self.make_batch()
        workloads = np.array([5, 3, 4])
        probabilities = batch.success_probability(workloads)
        times_paper = batch.expected_time(workloads)
        times_renewal = batch.expected_time(workloads, ExpectationMode.RENEWAL)
        gaps = batch.expected_gap()
        for index in range(len(batch)):
            scalar = batch[index]
            workload = int(workloads[index])
            assert probabilities[index] == pytest.approx(
                scalar.success_probability(workload), rel=1e-12
            )
            assert times_paper[index] == pytest.approx(
                scalar.expected_time(workload), rel=1e-12
            )
            assert times_renewal[index] == pytest.approx(
                scalar.expected_time(workload, ExpectationMode.RENEWAL), rel=1e-12
            )
            assert gaps[index] == pytest.approx(scalar.expected_gap(), rel=1e-12)

    def test_workload_edge_cases(self):
        batch = self.make_batch()
        assert np.all(batch.success_probability(1) == 1.0)
        assert np.all(batch.expected_time(np.zeros(3, dtype=int)) == 0.0)
        assert np.all(batch.expected_time(np.ones(3, dtype=int)) == 1.0)
        with pytest.raises(ValueError):
            batch.success_probability(np.array([-1, 2, 3]))
        with pytest.raises(ValueError):
            batch.expected_time(-2)

    def test_len_and_getitem(self):
        batch = self.make_batch()
        assert len(batch) == 3
        assert isinstance(batch, BatchGroupQuantities)
        assert batch[2].e_c == 1.0  # empty set
        assert math.isinf(batch[2].eu)

    def test_log_lambda_products(self):
        workers = make_workers(4, 23)
        analysis = BatchGroupAnalysis(workers)
        membership = analysis.membership([(0, 1), (2,), ()])
        logs = analysis.log_lambda_products(membership)
        expected0 = math.log(workers[0].lambda1) + math.log(workers[1].lambda1)
        assert logs[0] == pytest.approx(expected0, rel=1e-12)
        assert logs[2] == 0.0


class TestBatchedCommunication:
    def test_matches_scalar_estimates(self):
        from repro.analysis.communication import (
            estimate_communication,
            estimate_communication_batch,
        )

        workers = make_workers(6, 31)
        batched_analysis = GroupAnalysis(workers)
        scalar_analysis = GroupAnalysis(workers)
        phases = [
            {0: 4, 1: 2},
            {2: 0, 3: 7},
            {},
            {0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1},
        ]
        batch = estimate_communication_batch(batched_analysis, phases, ncom=2)
        for phase, estimate in zip(phases, batch):
            reference = estimate_communication(scalar_analysis, phase, ncom=2)
            assert estimate == reference
