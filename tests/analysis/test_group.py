"""Tests for the Theorem 5.1 group quantities (Eu, A, P+, E_c, E(W))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.group import (
    DEFAULT_MAX_HORIZON,
    ExpectationMode,
    GroupAnalysis,
    truncation_horizon,
)
from repro.analysis.single import WorkerAnalysis
from repro.availability.generators import paper_transition_matrix
from repro.availability.markov import MarkovAvailabilityModel


def make_workers(stays, speeds=None):
    speeds = speeds or [1] * len(stays)
    workers = []
    for stay, speed in zip(stays, speeds):
        model = MarkovAvailabilityModel(paper_transition_matrix(list(stay)))
        workers.append(WorkerAnalysis(model, speed=speed))
    return workers


def reference_quantities(workers, horizon=20000):
    """Direct (slow) evaluation of Eu(S) and A(S) by brute-force summation."""
    product = np.ones(horizon)
    for worker in workers:
        sub = worker.model.up_reclaimed_submatrix()
        values = np.empty(horizon)
        power = np.eye(2)
        for t in range(horizon):
            power = power @ sub
            values[t] = power[0, 0]
        product *= values
    t_values = np.arange(1, horizon + 1)
    return float(product.sum()), float((t_values * product).sum())


class TestTruncationHorizon:
    def test_monotone_in_epsilon(self):
        assert truncation_horizon(0.95, 1e-9) >= truncation_horizon(0.95, 1e-3)

    def test_monotone_in_lambda(self):
        assert truncation_horizon(0.99, 1e-6) >= truncation_horizon(0.9, 1e-6)

    def test_degenerate_lambda(self):
        assert truncation_horizon(0.0, 1e-6) == 1
        assert truncation_horizon(1.0, 1e-6) == DEFAULT_MAX_HORIZON

    def test_capped(self):
        assert truncation_horizon(0.999999, 1e-12, max_horizon=500) == 500

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            truncation_horizon(0.9, 0.0)

    def test_tail_bound_actually_satisfied(self):
        lam, eps = 0.97, 1e-6
        horizon = truncation_horizon(lam, eps)
        tail_eu = lam**horizon / (1 - lam)
        tail_a = lam**horizon * (horizon / (1 - lam) + lam / (1 - lam) ** 2)
        assert tail_eu <= eps
        assert tail_a <= eps * 1.0001


class TestGroupAnalysisBasics:
    def test_invalid_constructor_arguments(self):
        workers = make_workers([(0.95, 0.9, 0.9)])
        with pytest.raises(ValueError):
            GroupAnalysis(workers, epsilon=0)
        with pytest.raises(ValueError):
            GroupAnalysis(workers, max_horizon=0)

    def test_out_of_range_worker(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9)]))
        with pytest.raises(IndexError):
            analysis.quantities([3])

    def test_caching(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9), (0.92, 0.9, 0.9)]))
        first = analysis.quantities([0, 1])
        second = analysis.quantities((1, 0))
        assert first is second
        assert analysis.cache_size() == 1
        analysis.clear_cache()
        assert analysis.cache_size() == 0

    def test_empty_set(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9)]))
        quantities = analysis.quantities([])
        assert quantities.p_plus == 1.0
        assert quantities.e_c == 1.0
        assert quantities.expected_time(5) == 5.0
        assert quantities.success_probability(100) == 1.0


class TestGroupQuantitiesValues:
    def test_matches_bruteforce_single_worker(self):
        workers = make_workers([(0.95, 0.90, 0.90)])
        analysis = GroupAnalysis(workers, epsilon=1e-9)
        quantities = analysis.quantities([0])
        eu_ref, a_ref = reference_quantities(workers)
        assert quantities.eu == pytest.approx(eu_ref, rel=1e-4)
        assert quantities.a == pytest.approx(a_ref, rel=1e-4)
        assert quantities.p_plus == pytest.approx(eu_ref / (1 + eu_ref), rel=1e-4)

    def test_matches_bruteforce_three_workers(self):
        workers = make_workers([(0.95, 0.9, 0.9), (0.92, 0.95, 0.9), (0.97, 0.91, 0.93)])
        analysis = GroupAnalysis(workers, epsilon=1e-9)
        quantities = analysis.quantities([0, 1, 2])
        eu_ref, a_ref = reference_quantities(workers, horizon=5000)
        assert quantities.eu == pytest.approx(eu_ref, rel=1e-4)
        assert quantities.a == pytest.approx(a_ref, rel=1e-4)

    def test_p_plus_identity(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9), (0.93, 0.9, 0.9)]))
        quantities = analysis.quantities([0, 1])
        assert quantities.p_plus == pytest.approx(quantities.eu / (1 + quantities.eu))

    def test_larger_sets_are_less_likely_to_succeed(self):
        stays = [(0.95, 0.9, 0.9), (0.93, 0.92, 0.9), (0.96, 0.9, 0.91), (0.94, 0.9, 0.9)]
        analysis = GroupAnalysis(make_workers(stays))
        previous = 1.0
        for size in range(1, 5):
            p_plus = analysis.quantities(range(size)).p_plus
            assert p_plus <= previous + 1e-12
            previous = p_plus

    def test_no_failure_set_uses_kac_formula(self):
        matrix = np.array([[0.8, 0.2, 0.0], [0.4, 0.6, 0.0], [0.0, 0.0, 1.0]])
        model = MarkovAvailabilityModel(matrix, down_recoverable=False)
        analysis = GroupAnalysis([WorkerAnalysis(model), WorkerAnalysis(model)])
        quantities = analysis.quantities([0, 1])
        assert quantities.p_plus == 1.0
        assert not quantities.can_fail
        pi_u = 0.4 / 0.6
        assert quantities.e_c == pytest.approx(1.0 / pi_u**2)

    def test_always_up_workers(self):
        analysis = GroupAnalysis([WorkerAnalysis(MarkovAvailabilityModel.always_up())] * 2)
        quantities = analysis.quantities([0, 1])
        assert quantities.p_plus == 1.0
        assert quantities.e_c == 1.0
        assert quantities.expected_time(10) == 10.0


class TestExpectedTime:
    def test_workload_edge_cases(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9)]))
        quantities = analysis.quantities([0])
        assert quantities.expected_time(0) == 0.0
        assert quantities.expected_time(1) == 1.0
        assert quantities.success_probability(0) == 1.0
        assert quantities.success_probability(1) == 1.0
        with pytest.raises(ValueError):
            quantities.expected_time(-1)
        with pytest.raises(ValueError):
            quantities.success_probability(-1)

    def test_paper_mode_dominates_renewal_mode(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9), (0.92, 0.9, 0.9)]))
        quantities = analysis.quantities([0, 1])
        for workload in (2, 5, 10):
            paper = quantities.expected_time(workload, ExpectationMode.PAPER)
            renewal = quantities.expected_time(workload, ExpectationMode.RENEWAL)
            assert paper >= renewal
            assert renewal >= workload  # waiting can only stretch the duration

    def test_modes_coincide_without_failures(self):
        analysis = GroupAnalysis([WorkerAnalysis(MarkovAvailabilityModel.always_up())])
        quantities = analysis.quantities([0])
        assert quantities.expected_time(7, ExpectationMode.PAPER) == pytest.approx(
            quantities.expected_time(7, ExpectationMode.RENEWAL)
        )

    def test_success_probability_decreases_with_workload(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9), (0.92, 0.9, 0.9)]))
        quantities = analysis.quantities([0, 1])
        probabilities = [quantities.success_probability(w) for w in range(1, 20)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_expected_gap(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9)]))
        quantities = analysis.quantities([0])
        assert quantities.expected_gap() == pytest.approx(quantities.e_c / quantities.p_plus)

    def test_unknown_mode_rejected(self):
        analysis = GroupAnalysis(make_workers([(0.95, 0.9, 0.9)]))
        with pytest.raises(ValueError):
            analysis.quantities([0]).expected_time(3, "bogus")


class TestEpsilonConvergence:
    def test_tighter_epsilon_changes_little(self):
        workers = make_workers([(0.95, 0.9, 0.9), (0.93, 0.92, 0.91)])
        coarse = GroupAnalysis(workers, epsilon=1e-3).quantities([0, 1])
        fine = GroupAnalysis(workers, epsilon=1e-10).quantities([0, 1])
        assert coarse.eu == pytest.approx(fine.eu, abs=2e-3)
        assert coarse.p_plus == pytest.approx(fine.p_plus, abs=1e-3)

    @given(
        stay_up=st.floats(min_value=0.5, max_value=0.99),
        stay_r=st.floats(min_value=0.5, max_value=0.99),
        workload=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantities_always_well_formed(self, stay_up, stay_r, workload):
        workers = make_workers([(stay_up, stay_r, 0.9)])
        quantities = GroupAnalysis(workers).quantities([0])
        assert 0.0 <= quantities.p_plus <= 1.0
        assert quantities.eu >= 0.0
        assert quantities.e_c >= 0.0
        assert 0.0 <= quantities.success_probability(workload) <= 1.0
        assert quantities.expected_time(workload) >= workload - 1e-9
