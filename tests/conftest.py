"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.application import Application
from repro.availability import MarkovAvailabilityModel
from repro.availability.generators import paper_transition_matrix
from repro.platform import Platform, PlatformSpec, Processor, paper_platform, uniform_platform


@pytest.fixture
def reliable_model() -> MarkovAvailabilityModel:
    """A processor that is always UP."""
    return MarkovAvailabilityModel.always_up()


@pytest.fixture
def paper_model() -> MarkovAvailabilityModel:
    """A fixed model following the paper's structure (stay probabilities 0.95/0.92/0.90)."""
    return MarkovAvailabilityModel(paper_transition_matrix([0.95, 0.92, 0.90]))


@pytest.fixture
def flaky_model() -> MarkovAvailabilityModel:
    """A clearly unreliable processor (frequent failures and reclamations)."""
    return MarkovAvailabilityModel(paper_transition_matrix([0.70, 0.60, 0.50]))


@pytest.fixture
def small_platform(paper_model, flaky_model) -> Platform:
    """Four heterogeneous processors with mixed reliability, ncom = 2."""
    processors = [
        Processor(speed=1, capacity=5, availability=paper_model),
        Processor(speed=2, capacity=5, availability=paper_model),
        Processor(speed=3, capacity=5, availability=flaky_model),
        Processor(speed=4, capacity=5, availability=flaky_model),
    ]
    return Platform(processors, ncom=2, tprog=2, tdata=1)


@pytest.fixture
def reliable_platform() -> Platform:
    """Five identical, perfectly reliable processors with no communication cost."""
    return uniform_platform(5, speed=2, capacity=3, tprog=0, tdata=0)


@pytest.fixture
def paper_style_platform() -> Platform:
    """A small random platform generated with the paper's methodology."""
    return paper_platform(
        PlatformSpec(num_processors=8, ncom=4, wmin=1), num_tasks=5, seed=1234
    )


@pytest.fixture
def application() -> Application:
    return Application(tasks_per_iteration=5, iterations=3)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
