"""Docstring coverage and runnable-example enforcement.

The public surface pinned by ``tests/test_api_surface.py`` is also the
documented surface: every exported name carries a docstring, and the
primary entry points — the three ``repro.api`` verbs, the component
listings and the four hazard exports — carry a *runnable* example that
this module executes as doctests.  CI additionally runs a scoped ruff
``D`` ruleset over the same modules (see the lint lane).
"""

from __future__ import annotations

import doctest
import inspect

import pytest

import repro
from repro import api

#: Names whose docstrings must contain a working ``>>>`` example.
EXAMPLE_REQUIRED = [
    (api, "run"),
    (api, "sweep"),
    (api, "compare"),
    (api, "heuristics"),
    (api, "availability_models"),
    (repro, "GroupHazardProcess"),
    (repro, "DomainOutageProcess"),
    (repro, "ChurnProcess"),
    (repro, "DegradationAvailabilityModel"),
]


def _exported(module):
    for name in module.__all__:
        yield name, getattr(module, name)


@pytest.mark.parametrize("module", [repro, api], ids=lambda m: m.__name__)
def test_module_docstring_has_example(module):
    assert module.__doc__ and ">>>" in module.__doc__


@pytest.mark.parametrize("module", [repro, api], ids=lambda m: m.__name__)
def test_every_export_has_a_docstring(module):
    undocumented = []
    for name, obj in _exported(module):
        if isinstance(obj, (int, str, float, tuple, frozenset, list)):
            continue  # constants (UP/DOWN, __version__, name tuples)
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"{module.__name__} exports without docstrings: {undocumented}"


@pytest.mark.parametrize(
    "module, name", EXAMPLE_REQUIRED, ids=[n for _, n in EXAMPLE_REQUIRED]
)
def test_entry_point_has_runnable_example(module, name):
    doc = inspect.getdoc(getattr(module, name))
    assert doc and ">>>" in doc, f"{module.__name__}.{name} needs a doctest example"


@pytest.mark.parametrize(
    "module, name", EXAMPLE_REQUIRED, ids=[n for _, n in EXAMPLE_REQUIRED]
)
def test_entry_point_example_runs(module, name):
    obj = getattr(module, name)
    finder = doctest.DocTestFinder(recurse=False)
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    tests = finder.find(obj, name=name, globs={})
    assert tests, f"no doctest collected from {module.__name__}.{name}"
    for test in tests:
        result = runner.run(test)
        assert result.failed == 0, f"doctest failures in {module.__name__}.{name}"


def test_module_doctests_run():
    for module in (repro, api):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"doctest failures in {module.__name__}"
