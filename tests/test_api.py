"""Tests for the ``repro.api`` facade and registry-driven construction paths.

The central guarantees:

* every heuristic the registry resolves produces a scheduler whose
  golden-seed simulation results are bit-identical to direct (pre-registry)
  construction of the same policy;
* parameterized heuristic expressions flow end-to-end through a
  ``CampaignSpec`` → result store → tables pipeline under their canonical
  names;
* the facade's verbs wrap the engine/runner without changing results.
"""

import pytest

from repro import api
from repro.analysis.criteria import get_criterion
from repro.application import Application
from repro.experiments.runner import run_campaign_spec
from repro.experiments.spec import CampaignSpec
from repro.experiments.store import ResultStore
from repro.experiments.tables import format_spec_report
from repro.platform import PlatformSpec, paper_platform
from repro.scheduling.extensions import (
    FastestWorkersScheduler,
    StickyScheduler,
    ThresholdScheduler,
)
from repro.scheduling.passive import make_passive_heuristic
from repro.scheduling.proactive import ProactiveHeuristic
from repro.scheduling.random_heuristic import RandomScheduler
from repro.scheduling.registry import (
    ALL_HEURISTICS,
    EXTENSION_HEURISTIC_NAMES,
    PASSIVE_HEURISTICS,
    create_scheduler,
)
from repro.simulation import simulate

SEED = 1234
PLATFORM_SEED = 99


def small_platform():
    return paper_platform(
        PlatformSpec(num_processors=10, ncom=5, wmin=1), num_tasks=4, seed=PLATFORM_SEED
    )


def small_application():
    return Application(tasks_per_iteration=4, iterations=3)


def _legacy_scheduler(name):
    """Construct a scheduler the way the pre-registry code paths did."""
    if name == "RANDOM":
        return RandomScheduler()
    if name in PASSIVE_HEURISTICS:
        return make_passive_heuristic(name)
    legacy_extensions = {
        "FAST": FastestWorkersScheduler,
        "THRESHOLD-IE": ThresholdScheduler,
        "STICKY": StickyScheduler,
    }
    if name in legacy_extensions:
        return legacy_extensions[name]()
    criterion, _, passive = name.partition("-")
    return ProactiveHeuristic(
        get_criterion(criterion), make_passive_heuristic(passive), name=name
    )


def _fingerprint(result):
    return (
        result.success,
        result.makespan,
        result.completed_iterations,
        result.total_restarts,
        result.total_configuration_changes,
    )


class TestGoldenSeedEquivalence:
    @pytest.mark.parametrize("name", list(ALL_HEURISTICS) + list(EXTENSION_HEURISTIC_NAMES))
    def test_registry_path_matches_direct_construction(self, name):
        platform = small_platform()
        application = small_application()
        via_registry = simulate(
            platform, application, create_scheduler(name), seed=SEED, max_slots=30_000
        )
        direct = simulate(
            platform, application, _legacy_scheduler(name), seed=SEED, max_slots=30_000
        )
        assert _fingerprint(via_registry) == _fingerprint(direct)

    def test_default_parameters_match_bare_name(self):
        # Explicit defaults construct the same policy; only the recorded name
        # (the canonical expression) differs.
        platform = small_platform()
        application = small_application()
        bare = simulate(
            platform, application, create_scheduler("THRESHOLD-IE"),
            seed=SEED, max_slots=30_000,
        )
        explicit = simulate(
            platform, application, create_scheduler("THRESHOLD-IE(tau=0.5)"),
            seed=SEED, max_slots=30_000,
        )
        assert _fingerprint(bare) == _fingerprint(explicit)
        assert explicit.scheduler == "THRESHOLD-IE(threshold=0.5)"

    def test_api_run_matches_engine(self):
        platform = small_platform()
        engine_result = simulate(
            platform, small_application(), create_scheduler("Y-IE"),
            seed=SEED, max_slots=30_000,
        )
        facade_result = api.run(
            "Y-IE",
            m=4,
            ncom=5,
            wmin=1,
            num_processors=10,
            iterations=3,
            seed=SEED,
            platform_seed=PLATFORM_SEED,
            max_slots=30_000,
        )
        assert _fingerprint(engine_result) == _fingerprint(facade_result.simulation)
        assert facade_result.makespan == engine_result.makespan


def _parameterized_spec():
    return CampaignSpec(
        name="param-pipeline",
        m_values=(4,),
        ncom_values=(5,),
        wmin_values=(1,),
        num_processors_values=(8,),
        heuristics=("IE", "THRESHOLD-IE(tau=0.5)"),
        scenarios_per_cell=1,
        trials_per_scenario=2,
        iterations=3,
        makespan_cap=30_000,
    )


class TestParameterizedPipeline:
    def test_spec_canonicalizes_heuristic_expressions(self):
        spec = _parameterized_spec()
        assert spec.heuristics == ("IE", "THRESHOLD-IE(threshold=0.5)")

    def test_spec_hash_stable_across_spellings(self):
        spellings = [
            "THRESHOLD-IE(tau=0.5)",
            "threshold-ie(threshold=0.5)",
            " THRESHOLD-IE ( THRESHOLD = 0.5 ) ",
        ]
        hashes = set()
        for spelling in spellings:
            spec = CampaignSpec(
                name="hash-check", heuristics=("IE", spelling), m_values=(4,)
            )
            hashes.add(spec.spec_hash())
        assert len(hashes) == 1

    def test_distinct_parameters_hash_differently(self):
        hash_a = CampaignSpec(heuristics=("THRESHOLD-IE(tau=0.4)",)).spec_hash()
        hash_b = CampaignSpec(heuristics=("THRESHOLD-IE(tau=0.6)",)).spec_hash()
        assert hash_a != hash_b

    def test_spec_to_store_to_tables(self, tmp_path):
        """A parameterized expression runs end-to-end: spec → store → tables."""
        spec = _parameterized_spec()
        store = ResultStore.create(tmp_path / "store", spec)
        try:
            results = run_campaign_spec(spec, store=store)
        finally:
            store.close()
        canonical = "THRESHOLD-IE(threshold=0.5)"
        assert {r.heuristic for r in results} == {"IE", canonical}

        reopened = ResultStore.open(tmp_path / "store")
        try:
            stored = reopened.results()
            assert {r.heuristic for r in stored} == {"IE", canonical}
            report = format_spec_report(stored, reopened.spec)
        finally:
            reopened.close()
        assert canonical in report

        # Resume is a no-op: every cell is already in the store.
        resumed_store = ResultStore.open(tmp_path / "store")
        try:
            resumed = run_campaign_spec(spec, store=resumed_store)
        finally:
            resumed_store.close()
        assert [_fingerprint_instance(r) for r in resumed] == [
            _fingerprint_instance(r) for r in results
        ]

    def test_unknown_expression_rejected_by_spec(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="unknown heuristics"):
            CampaignSpec(heuristics=("IE", "THRESHOLD-IE(bogus=3)"))


def _fingerprint_instance(result):
    return (result.heuristic, result.trial_index, result.success, result.makespan)


class TestAvailabilitySpecNormalization:
    def test_case_variant_parameter_reaches_builder(self):
        from repro.experiments.scenarios import AvailabilitySpec

        spec = AvailabilitySpec(kind="markov", parameters=(("Stay_Low", 0.5),))
        # Stored under the registered spelling, so builders' get() finds it.
        assert spec.parameters == (("stay_low", 0.5),)
        assert spec.get("stay_low") == 0.5

    def test_case_variant_required_parameter_accepted(self, tmp_path):
        from repro.experiments.scenarios import AvailabilitySpec

        path = tmp_path / "trace.json"
        path.write_text('{"type": "trace", "rows": ["uuuu", "uuuu"]}')
        spec = AvailabilitySpec(kind="trace", parameters=(("PATH", str(path)),))
        assert spec.get("path") == str(path)

    def test_duplicate_parameter_spellings_rejected(self):
        from repro.exceptions import ExperimentError
        from repro.experiments.scenarios import AvailabilitySpec

        with pytest.raises(ExperimentError, match="more than once"):
            AvailabilitySpec(
                kind="markov", parameters=(("stay_low", 0.5), ("STAY_LOW", 0.6))
            )


class TestFacadeVerbs:
    def test_sweep_accepts_builtin_and_spec_objects(self):
        by_name = api.sweep("smoke")
        by_object = api.sweep(_parameterized_spec())
        assert len(by_name) == 4  # smoke: 1 scenario x 2 trials x 2 heuristics
        assert {r.heuristic for r in by_object.results} == {
            "IE",
            "THRESHOLD-IE(threshold=0.5)",
        }
        assert by_object.table()

    def test_sweep_with_store_resumes(self, tmp_path):
        first = api.sweep(_parameterized_spec(), store=tmp_path / "sweep")
        second = api.sweep(_parameterized_spec(), store=tmp_path / "sweep")
        assert [_fingerprint_instance(r) for r in first.results] == [
            _fingerprint_instance(r) for r in second.results
        ]

    def test_sweep_rejects_unknown_source(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="unknown campaign spec"):
            api.sweep("definitely-not-a-spec")

    def test_compare_ranks_with_parameterized_heuristics(self):
        comparison = api.compare(
            ["IE", "RANDOM", "THRESHOLD-IE(tau=0.5)"],
            m=4,
            ncom=5,
            wmin=1,
            num_processors=8,
            scenarios=1,
            trials=2,
            iterations=3,
            makespan_cap=30_000,
        )
        names = {name for name, _ in comparison.ranking()}
        assert names == {"IE", "RANDOM", "THRESHOLD-IE(threshold=0.5)"}
        assert comparison.best() in names
        assert "RANDOM" in comparison.table()

    def test_compare_without_reference_heuristic(self):
        # 'IE' absent: the reference falls back to the first heuristic listed.
        comparison = api.compare(
            ["RANDOM", "Y-IE"],
            m=4, ncom=5, wmin=1, num_processors=8,
            scenarios=1, trials=2, iterations=3, makespan_cap=30_000,
        )
        assert comparison.reference == "RANDOM"
        assert {name for name, _ in comparison.ranking()} == {"RANDOM", "Y-IE"}

    def test_compare_with_explicit_reference(self):
        comparison = api.compare(
            ["RANDOM", "Y-IE"],
            reference="y-ie",
            m=4, ncom=5, wmin=1, num_processors=8,
            scenarios=1, trials=2, iterations=3, makespan_cap=30_000,
        )
        assert comparison.reference == "Y-IE"
        reference_row = [s for s in comparison.summaries if s.heuristic == "Y-IE"][0]
        assert reference_row.pct_diff == 0.0

    def test_compare_rejects_absent_reference(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="not among the compared"):
            api.compare(["RANDOM"], reference="IE", m=4, scenarios=1, trials=1)

    def test_run_rejects_platform_plus_availability(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="not both"):
            api.run("IE", platform=small_platform(), availability={"kind": "diurnal"})

    def test_discovery_lists_components(self):
        heuristic_names = [info.name for info in api.heuristics()]
        assert set(ALL_HEURISTICS).issubset(heuristic_names)
        assert set(EXTENSION_HEURISTIC_NAMES).issubset(heuristic_names)
        model_names = [info.name for info in api.availability_models()]
        assert model_names == [
            "markov", "semi-markov", "diurnal", "trace",
            "trace-catalog", "trace-bootstrap", "fitted",
            "degradation", "correlated", "churn",
        ]
