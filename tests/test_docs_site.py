"""Documentation-site consistency checks.

mkdocs itself only runs in CI (``mkdocs build --strict`` in the lint
lane); these tests catch the same classes of breakage — missing nav
targets, orphaned pages, dead relative links — without requiring mkdocs
locally.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s#]+)(?:#[^)]*)?\)")


def nav_pages():
    config = yaml.safe_load((REPO / "mkdocs.yml").read_text(encoding="utf-8"))
    pages = []
    for entry in config["nav"]:
        (_, target), = entry.items()
        pages.append(target)
    return pages


def test_every_nav_entry_exists():
    for target in nav_pages():
        assert (DOCS / target).is_file(), f"nav references missing page {target}"


def test_every_docs_page_is_in_nav():
    in_nav = set(nav_pages())
    on_disk = {p.name for p in DOCS.glob("*.md")}
    assert on_disk == in_nav


def test_relative_links_resolve():
    broken = []
    for page in DOCS.glob("*.md"):
        for match in LINK_RE.finditer(page.read_text(encoding="utf-8")):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            if not (DOCS / target).is_file():
                broken.append(f"{page.name} -> {target}")
    assert not broken, f"dead relative links: {broken}"


def test_readme_links_resolve():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    broken = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if "://" in target:
            continue
        if not (REPO / target).exists():
            broken.append(target)
    assert not broken, f"dead README links: {broken}"


@pytest.mark.slow
def test_cli_reference_matches_live_help():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "gen_cli_docs.py"),
         "--check", str(REPO / "docs" / "cli.md")],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
