"""Tests for ENCD instances and the Theorem 4.1 reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidModelError
from repro.offline import (
    ENCDInstance,
    encd_to_offline_mu1,
    encd_to_offline_mu_inf,
    solve_encd_bruteforce,
    solve_offline_mu1,
    solve_offline_mu_inf,
)
from repro.offline.encd import biclique_from_offline_solution


def small_instance():
    # Bipartite graph where V = {0,1,2}, W = {0,1,2,3}; a 2x2 bi-clique exists
    # on V' = {0,1}, W' = {1,2}.
    matrix = np.array(
        [
            [True, True, True, False],
            [False, True, True, True],
            [True, False, False, True],
        ]
    )
    return ENCDInstance.from_matrix(matrix, a=2, b=2)


class TestENCDInstance:
    def test_dimensions(self):
        instance = small_instance()
        assert instance.num_left == 3
        assert instance.num_right == 4

    def test_invalid_cardinalities(self):
        matrix = np.ones((2, 2), dtype=bool)
        with pytest.raises(InvalidModelError):
            ENCDInstance.from_matrix(matrix, a=3, b=1)
        with pytest.raises(InvalidModelError):
            ENCDInstance.from_matrix(matrix, a=1, b=0)

    def test_ragged_adjacency_rejected(self):
        with pytest.raises(InvalidModelError):
            ENCDInstance(((True, False), (True,)), a=1, b=1)

    def test_empty_rejected(self):
        with pytest.raises(InvalidModelError):
            ENCDInstance((), a=1, b=1)

    def test_graph_round_trip(self):
        pytest.importorskip("networkx", reason="graph import/export needs networkx")
        instance = small_instance()
        graph = instance.to_graph()
        left = [("v", i) for i in range(instance.num_left)]
        right = [("w", j) for j in range(instance.num_right)]
        clone = ENCDInstance.from_graph(graph, left, right, instance.a, instance.b)
        assert np.array_equal(clone.matrix(), instance.matrix())

    def test_random_instance(self):
        instance = ENCDInstance.random(5, 6, 0.5, a=2, b=2, seed=3)
        assert instance.matrix().shape == (5, 6)

    def test_missing_networkx_gives_clear_error(self, monkeypatch):
        # networkx is optional: the graph helpers must fail with an install
        # hint (not a bare NameError) when it is absent.
        import repro.offline.encd as encd_module

        monkeypatch.setattr(encd_module, "nx", None)
        with pytest.raises(ImportError, match="networkx"):
            small_instance().to_graph()
        with pytest.raises(ImportError, match="pip install"):
            ENCDInstance.from_graph(object(), [], [], 1, 1)


class TestBruteForceENCD:
    def test_finds_known_biclique(self):
        solution = solve_encd_bruteforce(small_instance())
        assert solution is not None
        left, right = solution
        matrix = small_instance().matrix()
        assert len(left) == 2 and len(right) == 2
        for i in left:
            for j in right:
                assert matrix[i, j]

    def test_infeasible(self):
        matrix = np.eye(3, dtype=bool)  # only a perfect matching, no 2x2 bi-clique
        instance = ENCDInstance.from_matrix(matrix, a=2, b=2)
        assert solve_encd_bruteforce(instance) is None


class TestReductionMu1:
    def test_up_matrix_mirrors_adjacency(self):
        instance = small_instance()
        problem = encd_to_offline_mu1(instance)
        up = problem.up_matrix()
        assert np.array_equal(up, instance.matrix())
        assert problem.num_tasks == instance.a
        assert problem.task_slots == instance.b
        assert problem.capacity == 1

    def test_feasibility_equivalence_on_known_instances(self):
        feasible = small_instance()
        assert (solve_encd_bruteforce(feasible) is not None) == (
            solve_offline_mu1(encd_to_offline_mu1(feasible)) is not None
        )
        infeasible = ENCDInstance.from_matrix(np.eye(3, dtype=bool), a=2, b=2)
        assert solve_offline_mu1(encd_to_offline_mu1(infeasible)) is None

    def test_solution_maps_back_to_biclique(self):
        instance = small_instance()
        solution = solve_offline_mu1(encd_to_offline_mu1(instance))
        left, right = biclique_from_offline_solution(instance, solution.workers, solution.slots)
        assert len(left) == instance.a
        assert len(right) == instance.b

    def test_biclique_extraction_rejects_non_clique(self):
        instance = small_instance()
        with pytest.raises(ValueError):
            biclique_from_offline_solution(instance, [0, 2], [1, 2])


class TestReductionMuInf:
    def test_padding_structure(self):
        instance = small_instance()
        problem = encd_to_offline_mu_inf(instance)
        assert problem.capacity is None
        assert problem.deadline == 2 * instance.num_right + 1
        assert problem.task_slots == instance.b + instance.num_right + 1
        # The padding slots are all-UP.
        up = problem.up_matrix()
        assert np.all(up[:, instance.num_right:])

    def test_feasibility_equivalence(self):
        feasible = small_instance()
        assert solve_offline_mu_inf(encd_to_offline_mu_inf(feasible)) is not None
        infeasible = ENCDInstance.from_matrix(np.eye(3, dtype=bool), a=2, b=2)
        assert solve_offline_mu_inf(encd_to_offline_mu_inf(infeasible)) is None

    def test_solution_uses_exactly_a_workers(self):
        instance = small_instance()
        solution = solve_offline_mu_inf(encd_to_offline_mu_inf(instance))
        assert solution.num_workers == instance.a
        assert solution.tasks_per_worker == 1


class TestReductionEquivalenceProperty:
    @given(
        num_left=st.integers(min_value=2, max_value=5),
        num_right=st.integers(min_value=2, max_value=5),
        a=st.integers(min_value=1, max_value=3),
        b=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        density=st.floats(min_value=0.2, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_encd_and_both_reductions_agree(self, num_left, num_right, a, b, seed, density):
        a = min(a, num_left)
        b = min(b, num_right)
        instance = ENCDInstance.random(num_left, num_right, density, a=a, b=b, seed=seed)
        encd_feasible = solve_encd_bruteforce(instance) is not None
        mu1_feasible = solve_offline_mu1(encd_to_offline_mu1(instance)) is not None
        mu_inf_feasible = solve_offline_mu_inf(encd_to_offline_mu_inf(instance)) is not None
        assert encd_feasible == mu1_feasible
        assert encd_feasible == mu_inf_feasible
