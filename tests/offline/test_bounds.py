"""Tests for off-line bounds and the greedy clairvoyant oracle."""

import numpy as np

from repro.availability.trace import AvailabilityTrace
from repro.offline import OfflineProblem, greedy_oracle_iterations, upper_bound_iterations


def make_problem(rows, m, w, capacity=1):
    return OfflineProblem(
        trace=AvailabilityTrace(rows), num_tasks=m, task_slots=w, capacity=capacity
    )


class TestUpperBound:
    def test_all_up_trace(self):
        problem = make_problem(["u" * 10, "u" * 10], m=2, w=2)
        assert upper_bound_iterations(problem) == 5

    def test_zero_when_never_enough_workers(self):
        problem = make_problem(["uuuu", "dddd"], m=2, w=1)
        assert upper_bound_iterations(problem) == 0

    def test_unbounded_capacity_bound(self):
        problem = make_problem(["u" * 8, "u" * 8], m=2, w=2, capacity=None)
        assert upper_bound_iterations(problem) >= 2


class TestGreedyOracle:
    def test_counts_iterations_on_reliable_trace(self):
        problem = make_problem(["u" * 12, "u" * 12, "u" * 12], m=3, w=2)
        count, schedule = greedy_oracle_iterations(problem)
        assert count == 6
        assert len(schedule) == 6
        # Completion slots are strictly increasing.
        completions = [slot for _, slot in schedule]
        assert completions == sorted(completions)

    def test_oracle_never_exceeds_upper_bound(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            rows = [
                "".join(rng.choice(["u", "r", "d"], p=[0.7, 0.15, 0.15], size=30))
                for _ in range(4)
            ]
            problem = make_problem(rows, m=2, w=2)
            count, _ = greedy_oracle_iterations(problem)
            assert count <= upper_bound_iterations(problem)

    def test_oracle_schedule_is_feasible(self):
        rng = np.random.default_rng(1)
        rows = [
            "".join(rng.choice(["u", "d"], p=[0.8, 0.2], size=40)) for _ in range(5)
        ]
        problem = make_problem(rows, m=3, w=2)
        count, schedule = greedy_oracle_iterations(problem)
        up = problem.up_matrix()
        previous_end = -1
        for workers, completion in schedule:
            assert len(workers) == 3
            # Between the previous completion and this one there must be at
            # least w slots with all chosen workers UP.
            window = up[sorted(workers), previous_end + 1: completion + 1]
            assert np.logical_and.reduce(window, axis=0).sum() >= problem.task_slots
            previous_end = completion

    def test_infeasible_worker_count(self):
        problem = make_problem(["uuuu"], m=2, w=1)
        count, schedule = greedy_oracle_iterations(problem)
        assert count == 0 and schedule == []

    def test_explicit_worker_count(self):
        problem = make_problem(["u" * 8, "u" * 8, "u" * 8, "u" * 8], m=4, w=1, capacity=None)
        count_two, _ = greedy_oracle_iterations(problem, workers_per_iteration=2)
        count_four, _ = greedy_oracle_iterations(problem, workers_per_iteration=4)
        assert count_four >= count_two
