"""Tests for the exact off-line solvers."""
import pytest

from repro.availability.trace import AvailabilityTrace
from repro.offline import OfflineProblem, solve_offline_mu1, solve_offline_mu_inf


def make_problem(rows, m, w, capacity=1):
    return OfflineProblem(
        trace=AvailabilityTrace(rows), num_tasks=m, task_slots=w, capacity=capacity
    )


class TestSolveMu1:
    def test_finds_non_contiguous_window(self):
        problem = make_problem(["udduu", "uuduu", "ududu"], m=2, w=3)
        solution = solve_offline_mu1(problem)
        assert solution is not None
        assert solution.workers == frozenset({0, 1}) or len(solution.workers) == 2
        # All chosen slots must have both workers UP.
        up = problem.up_matrix()
        for slot in solution.slots:
            assert all(up[worker, slot] for worker in solution.workers)

    def test_infeasible(self):
        problem = make_problem(["ud", "du"], m=2, w=1)
        assert solve_offline_mu1(problem) is None

    def test_more_tasks_than_processors(self):
        problem = make_problem(["uu"], m=2, w=1)
        assert solve_offline_mu1(problem) is None

    def test_earliest_completion_is_preferred(self):
        # Workers {0,1} complete 2 common slots at slot 1; workers {1,2} only at slot 3.
        problem = make_problem(["uudd", "uuuu", "dduu"], m=2, w=2)
        solution = solve_offline_mu1(problem)
        assert solution.workers == frozenset({0, 1})
        assert solution.makespan() == 2

    def test_requires_capacity_one(self):
        problem = make_problem(["uu"], m=1, w=1, capacity=None)
        with pytest.raises(ValueError):
            solve_offline_mu1(problem)

    def test_solution_properties(self):
        problem = make_problem(["uuu", "uuu"], m=2, w=2)
        solution = solve_offline_mu1(problem)
        assert solution.num_workers == 2
        assert solution.num_slots == 2
        assert solution.tasks_per_worker == 1


class TestSolveMuInf:
    def test_prefers_fewer_tasks_per_worker_when_equal(self):
        problem = make_problem(["uuuu", "uuuu"], m=2, w=2, capacity=None)
        solution = solve_offline_mu_inf(problem)
        assert solution is not None
        assert solution.num_workers == 2
        assert solution.tasks_per_worker == 1

    def test_single_worker_fallback(self):
        # Only one worker is ever UP, so it must run both tasks (2 * w slots).
        problem = make_problem(["uuuu", "dddd"], m=2, w=2, capacity=None)
        solution = solve_offline_mu_inf(problem)
        assert solution is not None
        assert solution.num_workers == 1
        assert solution.tasks_per_worker == 2
        assert solution.num_slots == 4

    def test_infeasible_horizon_too_short(self):
        problem = make_problem(["uu", "uu"], m=2, w=3, capacity=None)
        assert solve_offline_mu_inf(problem) is None

    def test_requires_unbounded_capacity(self):
        problem = make_problem(["uu"], m=1, w=1, capacity=1)
        with pytest.raises(ValueError):
            solve_offline_mu_inf(problem)

    def test_earlier_completion_with_fewer_workers_wins(self):
        # Two workers together are only UP late; a single fast-available worker
        # finishes the doubled workload earlier.
        rows = ["uuuuuddd", "ddddduuu"]
        problem = make_problem(rows, m=2, w=2, capacity=None)
        solution = solve_offline_mu_inf(problem)
        assert solution.num_workers == 1
        assert solution.workers == frozenset({0})
        assert solution.makespan() == 4
