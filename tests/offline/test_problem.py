"""Tests for off-line problem instances."""

import pytest

from repro.availability.trace import AvailabilityTrace
from repro.exceptions import InvalidApplicationError
from repro.offline import OfflineProblem


@pytest.fixture
def trace():
    return AvailabilityTrace([
        "uuudu",
        "uduuu",
        "uuuuu",
        "duudu",
    ])


class TestOfflineProblem:
    def test_basic(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=2, task_slots=3, capacity=1)
        assert problem.num_processors == 4
        assert problem.deadline == 5
        assert not problem.unbounded_capacity

    def test_invalid_parameters(self, trace):
        with pytest.raises(InvalidApplicationError):
            OfflineProblem(trace=trace, num_tasks=0, task_slots=1)
        with pytest.raises(InvalidApplicationError):
            OfflineProblem(trace=trace, num_tasks=1, task_slots=0)
        with pytest.raises(InvalidApplicationError):
            OfflineProblem(trace=trace, num_tasks=1, task_slots=1, capacity=0)

    def test_unbounded_capacity(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=4, task_slots=2, capacity=None)
        assert problem.unbounded_capacity
        assert problem.minimum_workers() == 1

    def test_minimum_workers_bounded(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=5, task_slots=1, capacity=2)
        assert problem.minimum_workers() == 3

    def test_required_common_slots(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=6, task_slots=2, capacity=None)
        # 3 workers -> 2 tasks each -> 4 slots; 4 workers -> ceil(6/4)=2 tasks -> 4 slots.
        assert problem.required_common_slots(3) == 4
        assert problem.required_common_slots(6) == 2
        assert problem.required_common_slots(1) == 12

    def test_required_common_slots_capacity_violation(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=6, task_slots=2, capacity=1)
        # 3 workers cannot hold 6 tasks with capacity 1 -> sentinel "impossible".
        assert problem.required_common_slots(3) > 10**9

    def test_required_common_slots_invalid(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=2, task_slots=1)
        with pytest.raises(ValueError):
            problem.required_common_slots(0)

    def test_up_matrix(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=1, task_slots=1)
        assert problem.up_matrix().shape == (4, 5)

    def test_describe(self, trace):
        problem = OfflineProblem(trace=trace, num_tasks=2, task_slots=3, capacity=None)
        assert "mu=inf" in problem.describe()
